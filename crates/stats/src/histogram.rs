//! Fixed-width histograms (Figure 1b of the paper).

use crate::error::StatsError;

/// A histogram with uniformly spaced bins over `[lo, hi)`.
///
/// Values below `lo` clamp into the first bin and values at or above `hi`
/// clamp into the last, so the total count always equals the number of
/// observations — convenient when plotting weight distributions whose
/// outliers would otherwise fall off the chart.
///
/// # Example
///
/// ```
/// use gobo_stats::Histogram;
///
/// let mut h = Histogram::new(-1.0, 1.0, 4)?;
/// h.extend_from_slice(&[-0.9, -0.1, 0.1, 0.9, 5.0]);
/// assert_eq!(h.counts(), &[1, 1, 1, 2]);
/// # Ok::<(), gobo_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram over `[lo, hi)` with `bins` bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `bins == 0`, the
    /// bounds are not finite, or `lo >= hi`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter { name: "bins" });
        }
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(StatsError::InvalidParameter { name: "bounds" });
        }
        Ok(Histogram { lo, hi, counts: vec![0; bins] })
    }

    /// Creates a histogram sized to a sample's min/max and fills it.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for empty samples,
    /// [`StatsError::NonFinite`] for NaN/infinite values, and
    /// [`StatsError::InvalidParameter`] for `bins == 0` or constant
    /// samples (zero range).
    pub fn from_sample(sample: &[f32], bins: usize) -> Result<Self, StatsError> {
        if sample.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if sample.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::NonFinite);
        }
        let lo = sample.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = sample.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if lo == hi {
            return Err(StatsError::InvalidParameter { name: "range" });
        }
        // Widen hi a hair so the max lands inside the last bin rather than
        // on the open boundary.
        let mut h = Histogram::new(lo, hi + (hi - lo) * 1e-6, bins)?;
        h.extend_from_slice(sample);
        Ok(h)
    }

    /// Adds one observation (non-finite values are ignored).
    pub fn push(&mut self, x: f32) {
        if !x.is_finite() {
            return;
        }
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f32).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Adds every value in a slice.
    pub fn extend_from_slice(&mut self, xs: &[f32]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    pub fn bin_center(&self, i: usize) -> f32 {
        assert!(i < self.counts.len(), "bin {i} out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f32;
        self.lo + w * (i as f32 + 0.5)
    }

    /// Per-bin relative frequency (`count / total`); all zeros when empty.
    pub fn frequencies(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// Lower bound of the histogram's range.
    pub fn lo(&self) -> f32 {
        self.lo
    }

    /// Upper bound of the histogram's range.
    pub fn hi(&self) -> f32 {
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.extend_from_slice(&[0.0, 0.25, 0.49, 0.5, 0.75]);
        assert_eq!(h.counts(), &[3, 2]);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.extend_from_slice(&[-10.0, 10.0]);
        assert_eq!(h.counts(), &[1, 0, 0, 1]);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn non_finite_values_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.push(f32::NAN);
        h.push(f32::INFINITY);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn from_sample_covers_extremes() {
        let sample = [1.0f32, 2.0, 3.0, 4.0];
        let h = Histogram::from_sample(&sample, 3).unwrap();
        assert_eq!(h.total(), 4);
        // Max (4.0) must be counted in the last bin, not dropped.
        assert!(h.counts()[2] >= 1);
    }

    #[test]
    fn from_sample_rejects_bad_inputs() {
        assert!(Histogram::from_sample(&[], 3).is_err());
        assert!(Histogram::from_sample(&[1.0, f32::NAN], 3).is_err());
        assert!(Histogram::from_sample(&[2.0, 2.0], 3).is_err());
        assert!(Histogram::from_sample(&[1.0, 2.0], 0).is_err());
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert!((h.bin_center(0) - 0.125).abs() < 1e-6);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bin_center_panics_out_of_range() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        let _ = h.bin_center(2);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 8).unwrap();
        h.extend_from_slice(&[0.1, 0.2, 0.3, 0.9]);
        let sum: f64 = h.frequencies().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let empty = Histogram::new(0.0, 1.0, 3).unwrap();
        assert_eq!(empty.frequencies(), vec![0.0; 3]);
    }

    #[test]
    fn invalid_constructor_parameters() {
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, f32::INFINITY, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }
}
