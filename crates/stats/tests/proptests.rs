//! Property-based tests for statistical primitives.

use gobo_stats::{pearson, quantile, spearman, Gaussian, Histogram, OnlineMoments};
use proptest::prelude::*;

fn sample(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec((-50.0f32..50.0).prop_map(|v| (v * 64.0).round() / 64.0), 2..max_len)
}

proptest! {
    #[test]
    fn gaussian_fit_matches_online_moments(xs in sample(200)) {
        let spread = xs.iter().any(|&v| v != xs[0]);
        let fit = Gaussian::fit(&xs);
        if !spread {
            prop_assert!(fit.is_err());
            return Ok(());
        }
        let g = fit.unwrap();
        let m: OnlineMoments = xs.iter().copied().collect();
        prop_assert!((g.mean() - m.mean()).abs() < 1e-6);
        prop_assert!((g.variance() - m.variance()).abs() < 1e-5);
    }

    #[test]
    fn log_pdf_peaks_at_mean(mean in -10.0f64..10.0, std in 0.01f64..5.0, x in -20.0f32..20.0) {
        let g = Gaussian::new(mean, std).unwrap();
        prop_assert!(g.log_pdf(mean as f32) + 1e-6 >= g.log_pdf(x));
    }

    #[test]
    fn cutoff_radius_separates_in_from_out(std in 0.01f64..2.0, thr in -10.0f64..-1.0) {
        let g = Gaussian::new(0.0, std).unwrap();
        if let Some(r) = g.cutoff_radius(thr) {
            prop_assert!(g.log_pdf((r * 0.95) as f32) >= thr - 1e-4);
            prop_assert!(g.log_pdf((r * 1.05) as f32) <= thr + 1e-4);
        }
    }

    #[test]
    fn histogram_total_preserved(xs in sample(300), bins in 1usize..32) {
        let mut h = Histogram::new(-50.0, 50.0, bins).unwrap();
        h.extend_from_slice(&xs);
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    #[test]
    fn quantiles_are_monotone(xs in sample(100), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo).unwrap();
        let b = quantile(&xs, hi).unwrap();
        prop_assert!(a <= b);
    }

    #[test]
    fn quantile_stays_within_sample_range(xs in sample(100), q in 0.0f64..1.0) {
        let v = quantile(&xs, q).unwrap();
        let min = xs.iter().copied().fold(f32::INFINITY, f32::min);
        let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(v >= min && v <= max);
    }

    #[test]
    fn correlations_bounded(xs in sample(60), ys in sample(60)) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        if let Ok(r) = pearson(xs, ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
        if let Ok(r) = spearman(xs, ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn spearman_invariant_under_strictly_monotone_map(xs in sample(60)) {
        let ys: Vec<f32> = xs.iter().map(|&v| v * 3.0 + 1.0).collect();
        match spearman(&xs, &ys) {
            Ok(r) => prop_assert!((r - 1.0).abs() < 1e-6),
            Err(_) => prop_assert!(xs.iter().all(|&v| v == xs[0])), // constant input
        }
    }

    #[test]
    fn moments_merge_associative(xs in sample(120), split in 0usize..120) {
        let k = split.min(xs.len());
        let (a, b) = xs.split_at(k);
        let mut m1: OnlineMoments = a.iter().copied().collect();
        let m2: OnlineMoments = b.iter().copied().collect();
        m1.merge(&m2);
        let all: OnlineMoments = xs.iter().copied().collect();
        prop_assert_eq!(m1.count(), all.count());
        prop_assert!((m1.mean() - all.mean()).abs() < 1e-6);
        prop_assert!((m1.variance() - all.variance()).abs() < 1e-4);
    }
}
