//! The autograd tape.
//!
//! A [`Graph`] records forward operations as append-only nodes; each
//! node stores its operands, its computed value, and whether any
//! gradient flows through it. [`Graph::backward`] seeds the scalar loss
//! with gradient 1 and walks the tape in reverse, accumulating
//! gradients into every node that requires them.

use gobo_tensor::activation::{gelu_grad, relu_grad, tanh_grad};
use gobo_tensor::embed::{gather_rows, scatter_add_rows};
use gobo_tensor::linalg::{merge_heads, split_heads, transpose_batched};
use gobo_tensor::norm::row_moments;
use gobo_tensor::{Tensor, TensorError};

use crate::error::TrainError;

/// Handle to a variable recorded on a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Mul(VarId, VarId),
    Scale(VarId, f32),
    AddBias(VarId, VarId),
    MatMulNT(VarId, VarId),
    BatchMatMul(VarId, VarId),
    TransposeBatched(VarId),
    SplitHeads(VarId),
    MergeHeads(VarId, usize),
    Gelu(VarId),
    Tanh(VarId),
    Relu(VarId),
    Softmax(VarId),
    LayerNorm { x: VarId, gamma: VarId, beta: VarId, eps: f32 },
    Embedding { table: VarId, ids: Vec<usize> },
    Row(VarId, usize),
    Reshape(VarId),
    Mean(VarId),
    CrossEntropy { logits: VarId, targets: Vec<usize> },
    Mse { pred: VarId, target: VarId },
}

#[derive(Debug, Clone)]
struct Node {
    op: Op,
    value: Tensor,
    requires_grad: bool,
}

/// Gradients produced by [`Graph::backward`], indexed by [`VarId`].
#[derive(Debug, Clone)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// The gradient of the loss with respect to `var`, if any flowed.
    pub fn get(&self, var: VarId) -> Option<&Tensor> {
        self.grads.get(var.0).and_then(|g| g.as_ref())
    }
}

/// A reverse-mode autograd tape.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a trainable leaf (gradients will be computed).
    pub fn parameter(&mut self, value: Tensor) -> VarId {
        self.push(Op::Leaf, value, true)
    }

    /// Records a constant leaf (no gradient).
    pub fn constant(&mut self, value: Tensor) -> VarId {
        self.push(Op::Leaf, value, false)
    }

    /// The forward value of a variable.
    ///
    /// # Panics
    ///
    /// Panics when `var` does not belong to this graph (ids are only
    /// produced by this graph's methods, so that is a caller bug).
    pub fn value(&self, var: VarId) -> &Tensor {
        &self.nodes[var.0].value
    }

    fn push(&mut self, op: Op, value: Tensor, requires_grad: bool) -> VarId {
        self.nodes.push(Node { op, value, requires_grad });
        VarId(self.nodes.len() - 1)
    }

    fn needs(&self, var: VarId) -> bool {
        self.nodes[var.0].requires_grad
    }

    fn val(&self, var: VarId) -> &Tensor {
        &self.nodes[var.0].value
    }

    // --- forward ops ------------------------------------------------------

    /// Element-wise sum of two same-shaped variables.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches as [`TrainError::Tensor`].
    pub fn add(&mut self, a: VarId, b: VarId) -> Result<VarId, TrainError> {
        let value = self.val(a).add(self.val(b))?;
        let rg = self.needs(a) || self.needs(b);
        Ok(self.push(Op::Add(a, b), value, rg))
    }

    /// Element-wise difference `a - b`.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches as [`TrainError::Tensor`].
    pub fn sub(&mut self, a: VarId, b: VarId) -> Result<VarId, TrainError> {
        let value = self.val(a).sub(self.val(b))?;
        let rg = self.needs(a) || self.needs(b);
        Ok(self.push(Op::Sub(a, b), value, rg))
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches as [`TrainError::Tensor`].
    pub fn mul(&mut self, a: VarId, b: VarId) -> Result<VarId, TrainError> {
        let value = self.val(a).mul(self.val(b))?;
        let rg = self.needs(a) || self.needs(b);
        Ok(self.push(Op::Mul(a, b), value, rg))
    }

    /// Multiplies every element by a constant.
    pub fn scale(&mut self, a: VarId, s: f32) -> VarId {
        let value = self.val(a).scale(s);
        let rg = self.needs(a);
        self.push(Op::Scale(a, s), value, rg)
    }

    /// Adds a bias row to every row of a matrix-like variable.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches as [`TrainError::Tensor`].
    pub fn add_bias(&mut self, a: VarId, bias: VarId) -> Result<VarId, TrainError> {
        let value = self.val(a).add_bias(self.val(bias))?;
        let rg = self.needs(a) || self.needs(bias);
        Ok(self.push(Op::AddBias(a, bias), value, rg))
    }

    /// `a × wᵀ` for `a: (m, k)` and `w: (n, k)` — the FC-layer product.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches as [`TrainError::Tensor`].
    pub fn matmul_nt(&mut self, a: VarId, w: VarId) -> Result<VarId, TrainError> {
        let value = self.val(a).matmul_nt(self.val(w))?;
        let rg = self.needs(a) || self.needs(w);
        Ok(self.push(Op::MatMulNT(a, w), value, rg))
    }

    /// Batched matrix product of two rank-3 variables.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches as [`TrainError::Tensor`].
    pub fn batch_matmul(&mut self, a: VarId, b: VarId) -> Result<VarId, TrainError> {
        let value = self.val(a).batch_matmul(self.val(b))?;
        let rg = self.needs(a) || self.needs(b);
        Ok(self.push(Op::BatchMatMul(a, b), value, rg))
    }

    /// Transposes the last two axes of a rank-3 variable.
    ///
    /// # Errors
    ///
    /// Propagates rank mismatches as [`TrainError::Tensor`].
    pub fn transpose_batched(&mut self, a: VarId) -> Result<VarId, TrainError> {
        let value = transpose_batched(self.val(a))?;
        let rg = self.needs(a);
        Ok(self.push(Op::TransposeBatched(a), value, rg))
    }

    /// Splits `(rows, heads·hd)` into `(heads, rows, hd)`.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches as [`TrainError::Tensor`].
    pub fn split_heads(&mut self, a: VarId, heads: usize) -> Result<VarId, TrainError> {
        let value = split_heads(self.val(a), heads)?;
        let rg = self.needs(a);
        Ok(self.push(Op::SplitHeads(a), value, rg))
    }

    /// Merges `(heads, rows, hd)` back into `(rows, heads·hd)`.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches as [`TrainError::Tensor`].
    pub fn merge_heads(&mut self, a: VarId) -> Result<VarId, TrainError> {
        let heads = self.val(a).dims().first().copied().ok_or(TensorError::RankMismatch {
            op: "merge_heads",
            expected: 3,
            got: 0,
        })?;
        let value = merge_heads(self.val(a))?;
        let rg = self.needs(a);
        Ok(self.push(Op::MergeHeads(a, heads), value, rg))
    }

    /// GELU activation.
    pub fn gelu(&mut self, a: VarId) -> VarId {
        let value = self.val(a).gelu();
        let rg = self.needs(a);
        self.push(Op::Gelu(a), value, rg)
    }

    /// tanh activation.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let value = self.val(a).tanh();
        let rg = self.needs(a);
        self.push(Op::Tanh(a), value, rg)
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let value = self.val(a).relu();
        let rg = self.needs(a);
        self.push(Op::Relu(a), value, rg)
    }

    /// Row-wise softmax.
    ///
    /// # Errors
    ///
    /// Propagates empty-row errors as [`TrainError::Tensor`].
    pub fn softmax(&mut self, a: VarId) -> Result<VarId, TrainError> {
        let value = self.val(a).softmax()?;
        let rg = self.needs(a);
        Ok(self.push(Op::Softmax(a), value, rg))
    }

    /// Layer normalization with learned `gamma`/`beta`.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches as [`TrainError::Tensor`].
    pub fn layer_norm(
        &mut self,
        x: VarId,
        gamma: VarId,
        beta: VarId,
        eps: f32,
    ) -> Result<VarId, TrainError> {
        let value = self.val(x).layer_norm(self.val(gamma), self.val(beta), eps)?;
        let rg = self.needs(x) || self.needs(gamma) || self.needs(beta);
        Ok(self.push(Op::LayerNorm { x, gamma, beta, eps }, value, rg))
    }

    /// Gathers rows of an embedding table by token id.
    ///
    /// # Errors
    ///
    /// Propagates out-of-vocabulary errors as [`TrainError::Tensor`].
    pub fn embedding(&mut self, table: VarId, ids: &[usize]) -> Result<VarId, TrainError> {
        let value = gather_rows(self.val(table), ids)?;
        let rg = self.needs(table);
        Ok(self.push(Op::Embedding { table, ids: ids.to_vec() }, value, rg))
    }

    /// Extracts row `row` of a matrix-like variable as a `(1, cols)`
    /// matrix (used for the pooler's first-token pick).
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds errors as [`TrainError::Tensor`].
    pub fn row(&mut self, a: VarId, row: usize) -> Result<VarId, TrainError> {
        let r = self.val(a).row(row)?;
        let cols = r.len();
        let value = r.reshape(&[1, cols])?;
        let rg = self.needs(a);
        Ok(self.push(Op::Row(a, row), value, rg))
    }

    /// Reshapes a variable (same element count).
    ///
    /// # Errors
    ///
    /// Propagates element-count mismatches as [`TrainError::Tensor`].
    pub fn reshape(&mut self, a: VarId, dims: &[usize]) -> Result<VarId, TrainError> {
        let value = self.val(a).reshape(dims)?;
        let rg = self.needs(a);
        Ok(self.push(Op::Reshape(a), value, rg))
    }

    /// Mean of all elements, as a scalar variable.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Tensor`] for empty variables.
    pub fn mean(&mut self, a: VarId) -> Result<VarId, TrainError> {
        if self.val(a).is_empty() {
            return Err(TensorError::EmptyDimension { op: "mean" }.into());
        }
        let value = Tensor::scalar(self.val(a).mean());
        let rg = self.needs(a);
        Ok(self.push(Op::Mean(a), value, rg))
    }

    /// Mean cross-entropy of logits `(rows, classes)` against integer
    /// targets, as a scalar variable.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::TargetMismatch`] /
    /// [`TrainError::ClassOutOfRange`] for malformed targets.
    pub fn cross_entropy(&mut self, logits: VarId, targets: &[usize]) -> Result<VarId, TrainError> {
        let (rows, classes) = self.val(logits).shape().as_matrix()?;
        if targets.len() != rows {
            return Err(TrainError::TargetMismatch { rows, targets: targets.len() });
        }
        if let Some(&bad) = targets.iter().find(|&&t| t >= classes) {
            return Err(TrainError::ClassOutOfRange { class: bad, classes });
        }
        let log_probs = self.val(logits).log_softmax()?;
        let nll = -targets
            .iter()
            .enumerate()
            .map(|(r, &t)| log_probs.as_slice()[r * classes + t])
            .sum::<f32>()
            / rows as f32;
        let rg = self.needs(logits);
        Ok(self.push(
            Op::CrossEntropy { logits, targets: targets.to_vec() },
            Tensor::scalar(nll),
            rg,
        ))
    }

    /// Mean squared error between two same-shaped variables, as a
    /// scalar variable.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches as [`TrainError::Tensor`].
    pub fn mse(&mut self, pred: VarId, target: VarId) -> Result<VarId, TrainError> {
        let diff = self.val(pred).sub(self.val(target))?;
        let value = Tensor::scalar(diff.map(|d| d * d).mean());
        let rg = self.needs(pred) || self.needs(target);
        Ok(self.push(Op::Mse { pred, target }, value, rg))
    }

    // --- backward -----------------------------------------------------------

    /// Computes gradients of a scalar `loss` with respect to every
    /// recorded variable that requires them.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::NonScalarLoss`] unless `loss` holds exactly
    /// one element, and [`TrainError::UnknownVar`] for foreign ids.
    pub fn backward(&self, loss: VarId) -> Result<Gradients, TrainError> {
        let idx = loss.0;
        if idx >= self.nodes.len() {
            return Err(TrainError::UnknownVar { index: idx });
        }
        if self.nodes[idx].value.len() != 1 {
            return Err(TrainError::NonScalarLoss { elements: self.nodes[idx].value.len() });
        }
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        let seed_dims = self.nodes[idx].value.dims().to_vec();
        grads[idx] = Some(Tensor::ones(&seed_dims));

        for i in (0..=idx).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            let Some(dy) = grads[i].clone() else { continue };
            self.backprop_node(i, &dy, &mut grads)?;
        }
        Ok(Gradients { grads })
    }

    /// Propagates `dy` from node `i` into its operands.
    fn backprop_node(
        &self,
        i: usize,
        dy: &Tensor,
        grads: &mut [Option<Tensor>],
    ) -> Result<(), TrainError> {
        let node = &self.nodes[i];
        match &node.op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.accumulate(grads, *a, dy.clone())?;
                self.accumulate(grads, *b, dy.clone())?;
            }
            Op::Sub(a, b) => {
                self.accumulate(grads, *a, dy.clone())?;
                self.accumulate(grads, *b, dy.scale(-1.0))?;
            }
            Op::Mul(a, b) => {
                self.accumulate(grads, *a, dy.mul(self.val(*b))?)?;
                self.accumulate(grads, *b, dy.mul(self.val(*a))?)?;
            }
            Op::Scale(a, s) => {
                self.accumulate(grads, *a, dy.scale(*s))?;
            }
            Op::AddBias(a, bias) => {
                self.accumulate(grads, *a, dy.clone())?;
                self.accumulate(grads, *bias, dy.sum_cols()?)?;
            }
            Op::MatMulNT(a, w) => {
                // y = a·wᵀ ⇒ da = dy·w, dw = dyᵀ·a.
                self.accumulate(grads, *a, dy.matmul(self.val(*w))?)?;
                self.accumulate(grads, *w, dy.transpose()?.matmul(self.val(*a))?)?;
            }
            Op::BatchMatMul(a, b) => {
                // y = A·B ⇒ dA = dy·Bᵀ, dB = Aᵀ·dy (batched).
                let bt = transpose_batched(self.val(*b))?;
                self.accumulate(grads, *a, dy.batch_matmul(&bt)?)?;
                let at = transpose_batched(self.val(*a))?;
                self.accumulate(grads, *b, at.batch_matmul(dy)?)?;
            }
            Op::TransposeBatched(a) => {
                self.accumulate(grads, *a, transpose_batched(dy)?)?;
            }
            Op::SplitHeads(a) => {
                self.accumulate(grads, *a, merge_heads(dy)?)?;
            }
            Op::MergeHeads(a, heads) => {
                self.accumulate(grads, *a, split_heads(dy, *heads)?)?;
            }
            Op::Gelu(a) => {
                let dx = self.val(*a).map(gelu_grad).mul(dy)?;
                self.accumulate(grads, *a, dx)?;
            }
            Op::Tanh(a) => {
                let dx = self.val(*a).map(tanh_grad).mul(dy)?;
                self.accumulate(grads, *a, dx)?;
            }
            Op::Relu(a) => {
                let dx = self.val(*a).map(relu_grad).mul(dy)?;
                self.accumulate(grads, *a, dx)?;
            }
            Op::Softmax(a) => {
                // dx = y ⊙ (dy − ⟨dy, y⟩_row)
                let y = &node.value;
                let (rows, cols) = y.shape().as_matrix()?;
                let mut dx = dy.mul(y)?;
                let data = dx.as_mut_slice();
                let yv = y.as_slice();
                let dyv = dy.as_slice();
                for r in 0..rows {
                    let dot: f32 = (0..cols).map(|c| dyv[r * cols + c] * yv[r * cols + c]).sum();
                    for c in 0..cols {
                        data[r * cols + c] -= dot * yv[r * cols + c];
                    }
                }
                self.accumulate(grads, *a, dx)?;
            }
            Op::LayerNorm { x, gamma, beta, eps } => {
                let xv = self.val(*x);
                let (rows, cols) = xv.shape().as_matrix()?;
                let g = self.val(*gamma).as_slice();
                let moments = row_moments(xv)?;
                let xs = xv.as_slice();
                let dyv = dy.as_slice();
                let mut dx = Tensor::zeros(xv.dims());
                let mut dgamma = vec![0.0f32; cols];
                let mut dbeta = vec![0.0f32; cols];
                for r in 0..rows {
                    let m = moments[r];
                    let inv = 1.0 / (m.var + eps).sqrt();
                    // Row-level sums for the dx formula.
                    let mut sum_dyg = 0.0f32;
                    let mut sum_dyg_xhat = 0.0f32;
                    for c in 0..cols {
                        let xhat = (xs[r * cols + c] - m.mean) * inv;
                        let dyg = dyv[r * cols + c] * g[c];
                        sum_dyg += dyg;
                        sum_dyg_xhat += dyg * xhat;
                        dgamma[c] += dyv[r * cols + c] * xhat;
                        dbeta[c] += dyv[r * cols + c];
                    }
                    let n = cols as f32;
                    let dxs = dx.as_mut_slice();
                    for c in 0..cols {
                        let xhat = (xs[r * cols + c] - m.mean) * inv;
                        let dyg = dyv[r * cols + c] * g[c];
                        dxs[r * cols + c] = inv * (dyg - sum_dyg / n - xhat * sum_dyg_xhat / n);
                    }
                }
                self.accumulate(grads, *x, dx)?;
                self.accumulate(grads, *gamma, Tensor::from_vec(dgamma, &[cols])?)?;
                self.accumulate(grads, *beta, Tensor::from_vec(dbeta, &[cols])?)?;
            }
            Op::Embedding { table, ids } => {
                let vocab = self.val(*table).dims()[0];
                self.accumulate(grads, *table, scatter_add_rows(dy, ids, vocab)?)?;
            }
            Op::Row(a, row) => {
                let src = self.val(*a);
                let (rows, cols) = src.shape().as_matrix()?;
                let mut dx = Tensor::zeros(&[rows, cols]);
                let dxs = dx.as_mut_slice();
                dxs[row * cols..(row + 1) * cols].copy_from_slice(dy.as_slice());
                let dx = dx.reshape(src.dims())?;
                self.accumulate(grads, *a, dx)?;
            }
            Op::Reshape(a) => {
                let dx = dy.reshape(self.val(*a).dims())?;
                self.accumulate(grads, *a, dx)?;
            }
            Op::Mean(a) => {
                let n = self.val(*a).len() as f32;
                let up = dy.as_slice()[0];
                let dx = Tensor::full(self.val(*a).dims(), up / n);
                self.accumulate(grads, *a, dx)?;
            }
            Op::CrossEntropy { logits, targets } => {
                let up = dy.as_slice()[0];
                let probs = self.val(*logits).softmax()?;
                let (rows, cols) = probs.shape().as_matrix()?;
                let mut dx = probs;
                let data = dx.as_mut_slice();
                for (r, &t) in targets.iter().enumerate() {
                    data[r * cols + t] -= 1.0;
                }
                let dx = dx.scale(up / rows as f32);
                self.accumulate(grads, *logits, dx)?;
            }
            Op::Mse { pred, target } => {
                let up = dy.as_slice()[0];
                let n = self.val(*pred).len() as f32;
                let diff = self.val(*pred).sub(self.val(*target))?;
                let dpred = diff.scale(2.0 * up / n);
                self.accumulate(grads, *pred, dpred.clone())?;
                self.accumulate(grads, *target, dpred.scale(-1.0))?;
            }
        }
        Ok(())
    }

    fn accumulate(
        &self,
        grads: &mut [Option<Tensor>],
        var: VarId,
        delta: Tensor,
    ) -> Result<(), TrainError> {
        if !self.nodes[var.0].requires_grad {
            return Ok(());
        }
        match &mut grads[var.0] {
            Some(existing) => *existing = existing.add(&delta)?,
            slot @ None => *slot = Some(delta),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically differentiates `loss(params)` with respect to one
    /// element of one parameter.
    fn finite_diff(
        build: &dyn Fn(&mut Graph, &[Tensor]) -> VarId,
        params: &[Tensor],
        which: usize,
        elem: usize,
    ) -> f32 {
        let h = 1e-3;
        let eval = |delta: f32| {
            let mut bumped: Vec<Tensor> = params.to_vec();
            bumped[which].as_mut_slice()[elem] += delta;
            let mut g = Graph::new();
            let loss = build(&mut g, &bumped);
            g.value(loss).as_slice()[0]
        };
        (eval(h) - eval(-h)) / (2.0 * h)
    }

    /// Checks analytic gradients of every parameter element against
    /// finite differences.
    fn grad_check(build: &dyn Fn(&mut Graph, &[Tensor]) -> VarId, params: &[Tensor], tol: f32) {
        let mut g = Graph::new();
        let loss = build(&mut g, params);
        let grads = g.backward(loss).unwrap();
        // Parameters are the first `params.len()` recorded vars in every
        // builder below.
        for (which, p) in params.iter().enumerate() {
            let analytic = grads.get(VarId(which)).expect("gradient exists");
            for elem in 0..p.len() {
                let numeric = finite_diff(build, params, which, elem);
                let a = analytic.as_slice()[elem];
                assert!(
                    (a - numeric).abs() < tol + 0.05 * numeric.abs(),
                    "param {which} elem {elem}: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn matmul_nt_gradients() {
        let params = vec![
            t(vec![0.5, -0.3, 0.2, 0.8, -0.1, 0.4], &[2, 3]), // a
            t(vec![0.1, 0.7, -0.2, 0.3, -0.4, 0.6], &[2, 3]), // w
        ];
        grad_check(
            &|g, p| {
                let a = g.parameter(p[0].clone());
                let w = g.parameter(p[1].clone());
                let y = g.matmul_nt(a, w).unwrap();
                g.mean(y).unwrap()
            },
            &params,
            1e-3,
        );
    }

    #[test]
    fn bias_and_activation_gradients() {
        let params = vec![t(vec![0.5, -0.3, 0.2, 0.8], &[2, 2]), t(vec![0.1, -0.2], &[2])];
        grad_check(
            &|g, p| {
                let a = g.parameter(p[0].clone());
                let b = g.parameter(p[1].clone());
                let y = g.add_bias(a, b).unwrap();
                let y = g.gelu(y);
                let y = g.tanh(y);
                g.mean(y).unwrap()
            },
            &params,
            2e-3,
        );
    }

    #[test]
    fn softmax_gradients() {
        let params = vec![t(vec![0.5, -0.3, 0.2, 0.8, 0.0, -0.5], &[2, 3])];
        grad_check(
            &|g, p| {
                let a = g.parameter(p[0].clone());
                let y = g.softmax(a).unwrap();
                // Non-uniform weighting so gradients are non-trivial.
                let w = g.constant(t(vec![1.0, 2.0, 3.0, 0.5, 1.5, 2.5], &[2, 3]));
                let y = g.mul(y, w).unwrap();
                g.mean(y).unwrap()
            },
            &params,
            1e-3,
        );
    }

    #[test]
    fn layer_norm_gradients() {
        let params = vec![
            t(vec![0.5, -0.3, 0.2, 0.9, 1.4, -0.8], &[2, 3]),
            t(vec![1.2, 0.8, 1.0], &[3]),
            t(vec![0.0, 0.1, -0.1], &[3]),
        ];
        grad_check(
            &|g, p| {
                let x = g.parameter(p[0].clone());
                let gamma = g.parameter(p[1].clone());
                let beta = g.parameter(p[2].clone());
                let y = g.layer_norm(x, gamma, beta, 1e-5).unwrap();
                let w = g.constant(t(vec![1.0, -2.0, 0.5, 2.0, 1.0, -1.0], &[2, 3]));
                let y = g.mul(y, w).unwrap();
                g.mean(y).unwrap()
            },
            &params,
            3e-3,
        );
    }

    #[test]
    fn embedding_gradients() {
        let params = vec![t(vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6], &[3, 2])];
        grad_check(
            &|g, p| {
                let table = g.parameter(p[0].clone());
                let y = g.embedding(table, &[2, 0, 2]).unwrap();
                let w = g.constant(t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]));
                let y = g.mul(y, w).unwrap();
                g.mean(y).unwrap()
            },
            &params,
            1e-3,
        );
    }

    #[test]
    fn cross_entropy_gradients() {
        let params = vec![t(vec![0.5, -0.3, 0.2, 0.8, 0.0, -0.5], &[2, 3])];
        grad_check(
            &|g, p| {
                let logits = g.parameter(p[0].clone());
                g.cross_entropy(logits, &[2, 0]).unwrap()
            },
            &params,
            1e-3,
        );
    }

    #[test]
    fn mse_gradients() {
        let params = vec![t(vec![0.5, -0.3, 0.2], &[3])];
        grad_check(
            &|g, p| {
                let pred = g.parameter(p[0].clone());
                let target = g.constant(t(vec![1.0, 0.0, -1.0], &[3]));
                g.mse(pred, target).unwrap()
            },
            &params,
            1e-3,
        );
    }

    #[test]
    fn attention_block_gradients() {
        // Full scaled-dot-product attention with head split/merge.
        let params = vec![
            t((0..8).map(|i| 0.1 * i as f32 - 0.4).collect(), &[2, 4]), // x (seq=2, hidden=4)
            t((0..16).map(|i| 0.05 * i as f32 - 0.4).collect(), &[4, 4]), // wq
            t((0..16).map(|i| 0.03 * (i as f32) - 0.2).collect(), &[4, 4]), // wk
            t((0..16).map(|i| -0.04 * (i as f32) + 0.3).collect(), &[4, 4]), // wv
        ];
        grad_check(
            &|g, p| {
                let x = g.parameter(p[0].clone());
                let wq = g.parameter(p[1].clone());
                let wk = g.parameter(p[2].clone());
                let wv = g.parameter(p[3].clone());
                let q = g.matmul_nt(x, wq).unwrap();
                let k = g.matmul_nt(x, wk).unwrap();
                let v = g.matmul_nt(x, wv).unwrap();
                let qh = g.split_heads(q, 2).unwrap();
                let kh = g.split_heads(k, 2).unwrap();
                let vh = g.split_heads(v, 2).unwrap();
                let kt = g.transpose_batched(kh).unwrap();
                let scores = g.batch_matmul(qh, kt).unwrap();
                let scores = g.scale(scores, 1.0 / (2.0f32).sqrt());
                let probs = g.softmax(scores).unwrap();
                let ctx = g.batch_matmul(probs, vh).unwrap();
                let merged = g.merge_heads(ctx).unwrap();
                g.mean(merged).unwrap()
            },
            &params,
            3e-3,
        );
    }

    #[test]
    fn residual_reuse_accumulates_gradients() {
        // x used twice (residual): gradient must be the sum of both paths.
        let params = vec![t(vec![0.3, -0.2], &[1, 2])];
        grad_check(
            &|g, p| {
                let x = g.parameter(p[0].clone());
                let y = g.gelu(x);
                let z = g.add(x, y).unwrap();
                g.mean(z).unwrap()
            },
            &params,
            1e-3,
        );
    }

    #[test]
    fn constants_get_no_gradient() {
        let mut g = Graph::new();
        let c = g.constant(t(vec![1.0, 2.0], &[2]));
        let p = g.parameter(t(vec![3.0, 4.0], &[2]));
        let y = g.mul(c, p).unwrap();
        let loss = g.mean(y).unwrap();
        let grads = g.backward(loss).unwrap();
        assert!(grads.get(c).is_none());
        assert!(grads.get(p).is_some());
    }

    #[test]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let p = g.parameter(t(vec![1.0, 2.0], &[2]));
        assert!(matches!(g.backward(p), Err(TrainError::NonScalarLoss { elements: 2 })));
    }

    #[test]
    fn cross_entropy_validates_targets() {
        let mut g = Graph::new();
        let logits = g.parameter(t(vec![0.0; 6], &[2, 3]));
        assert!(matches!(g.cross_entropy(logits, &[0]), Err(TrainError::TargetMismatch { .. })));
        assert!(matches!(
            g.cross_entropy(logits, &[0, 5]),
            Err(TrainError::ClassOutOfRange { class: 5, classes: 3 })
        ));
    }

    #[test]
    fn row_gradient_lands_in_right_row() {
        let mut g = Graph::new();
        let p = g.parameter(t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let r = g.row(p, 1).unwrap();
        let loss = g.mean(r).unwrap();
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(p).unwrap().as_slice(), &[0.0, 0.0, 0.5, 0.5]);
    }

    #[test]
    fn unknown_var_rejected() {
        let g = Graph::new();
        assert!(matches!(g.backward(VarId(3)), Err(TrainError::UnknownVar { index: 3 })));
    }
}
