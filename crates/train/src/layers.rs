//! A trainable BERT-style encoder expressed on the autograd tape.
//!
//! Parameter names match the `gobo-model` convention exactly
//! (`encoder.<i>.attention.query`, `…​.bias`, `…​.ln.gamma`,
//! `embeddings.word`, `pooler`), so a trained [`crate::ParamSet`]
//! transfers into an inference `TransformerModel` by name, where the
//! quantization pipeline picks it up.

use gobo_tensor::norm::LAYER_NORM_EPS;
use gobo_tensor::rng::{randn, xavier_normal};
use gobo_tensor::Tensor;
use rand::Rng;

use crate::error::TrainError;
use crate::params::{BoundParams, ParamSet};
use crate::tape::{Graph, VarId};

/// Geometry of a trainable encoder (a structural subset of
/// `gobo-model`'s `ModelConfig`, duplicated here so the training crate
/// stays independent of the model crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderDims {
    /// Number of encoder layers.
    pub layers: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Attention heads (`hidden % heads == 0`).
    pub heads: usize,
    /// Intermediate FC width.
    pub intermediate: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length.
    pub max_position: usize,
    /// Token-type vocabulary (0 disables segment embeddings).
    pub type_vocab: usize,
}

impl EncoderDims {
    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidHyperparameter`] naming the first
    /// inconsistent field.
    pub fn validate(&self) -> Result<(), TrainError> {
        if self.layers == 0 {
            return Err(TrainError::InvalidHyperparameter { name: "layers" });
        }
        if self.hidden == 0 || self.heads == 0 || !self.hidden.is_multiple_of(self.heads) {
            return Err(TrainError::InvalidHyperparameter { name: "heads" });
        }
        if self.intermediate == 0 {
            return Err(TrainError::InvalidHyperparameter { name: "intermediate" });
        }
        if self.vocab == 0 {
            return Err(TrainError::InvalidHyperparameter { name: "vocab" });
        }
        if self.max_position == 0 {
            return Err(TrainError::InvalidHyperparameter { name: "max_position" });
        }
        Ok(())
    }
}

/// Initializes a full encoder parameter set with `gobo-model`-compatible
/// names: Xavier-normal FC weights (Gaussian-shaped, as trained BERT
/// layers are — Figure 1b), `N(0, 0.02²)` embeddings, zero biases,
/// unit LayerNorm gains.
///
/// # Errors
///
/// Propagates [`EncoderDims::validate`] failures.
pub fn init_encoder_params(dims: &EncoderDims, rng: &mut impl Rng) -> Result<ParamSet, TrainError> {
    dims.validate()?;
    let mut p = ParamSet::new();
    let h = dims.hidden;
    p.insert("embeddings.word", randn(rng, &[dims.vocab, h], 0.0, 0.02));
    p.insert("embeddings.position", randn(rng, &[dims.max_position, h], 0.0, 0.02));
    if dims.type_vocab > 0 {
        p.insert("embeddings.token_type", randn(rng, &[dims.type_vocab, h], 0.0, 0.02));
    }
    p.insert("embeddings.ln.gamma", Tensor::ones(&[h]));
    p.insert("embeddings.ln.beta", Tensor::zeros(&[h]));
    for e in 0..dims.layers {
        let mut fc = |name: String, rows: usize, cols: usize| {
            p.insert(name.clone(), xavier_normal(rng, rows, cols));
            p.insert(format!("{name}.bias"), Tensor::zeros(&[rows]));
        };
        fc(format!("encoder.{e}.attention.query"), h, h);
        fc(format!("encoder.{e}.attention.key"), h, h);
        fc(format!("encoder.{e}.attention.value"), h, h);
        fc(format!("encoder.{e}.attention.output"), h, h);
        fc(format!("encoder.{e}.intermediate"), dims.intermediate, h);
        fc(format!("encoder.{e}.output"), h, dims.intermediate);
        p.insert(format!("encoder.{e}.attention.ln.gamma"), Tensor::ones(&[h]));
        p.insert(format!("encoder.{e}.attention.ln.beta"), Tensor::zeros(&[h]));
        p.insert(format!("encoder.{e}.output.ln.gamma"), Tensor::ones(&[h]));
        p.insert(format!("encoder.{e}.output.ln.beta"), Tensor::zeros(&[h]));
    }
    p.insert("pooler", xavier_normal(rng, h, h));
    p.insert("pooler.bias", Tensor::zeros(&[h]));
    Ok(p)
}

/// Output variables of an encoder forward pass on the tape.
#[derive(Debug, Clone, Copy)]
pub struct EncoderVars {
    /// Final hidden states, `(seq_len, hidden)`.
    pub hidden: VarId,
    /// Pooled first-token representation, `(1, hidden)`.
    pub pooled: VarId,
}

/// Builds the full encoder forward pass on `graph` from bound
/// parameters, mirroring `gobo-model`'s inference pass op for op.
///
/// # Errors
///
/// Propagates tape errors (shape mismatches, out-of-vocabulary ids,
/// missing parameters).
pub fn encoder_forward(
    graph: &mut Graph,
    bound: &BoundParams,
    dims: &EncoderDims,
    ids: &[usize],
    type_ids: &[usize],
) -> Result<EncoderVars, TrainError> {
    let word = bound.var("embeddings.word")?;
    let mut x = graph.embedding(word, ids)?;
    let positions: Vec<usize> = (0..ids.len()).collect();
    let pos_table = bound.var("embeddings.position")?;
    let pos = graph.embedding(pos_table, &positions)?;
    x = graph.add(x, pos)?;
    if dims.type_vocab > 0 {
        let zeros;
        let types: &[usize] = if type_ids.is_empty() {
            zeros = vec![0usize; ids.len()];
            &zeros
        } else {
            type_ids
        };
        let tt_table = bound.var("embeddings.token_type")?;
        let tt = graph.embedding(tt_table, types)?;
        x = graph.add(x, tt)?;
    }
    let gamma = bound.var("embeddings.ln.gamma")?;
    let beta = bound.var("embeddings.ln.beta")?;
    x = graph.layer_norm(x, gamma, beta, LAYER_NORM_EPS)?;

    for e in 0..dims.layers {
        x = encoder_layer(graph, bound, dims, e, x)?;
    }

    let first = graph.row(x, 0)?;
    let pw = bound.var("pooler")?;
    let pb = bound.var("pooler.bias")?;
    let z = graph.matmul_nt(first, pw)?;
    let z = graph.add_bias(z, pb)?;
    let pooled = graph.tanh(z);
    Ok(EncoderVars { hidden: x, pooled })
}

fn encoder_layer(
    graph: &mut Graph,
    bound: &BoundParams,
    dims: &EncoderDims,
    e: usize,
    x: VarId,
) -> Result<VarId, TrainError> {
    let fc = |graph: &mut Graph, name: &str, input: VarId| -> Result<VarId, TrainError> {
        let w = bound.var(&format!("encoder.{e}.{name}"))?;
        let b = bound.var(&format!("encoder.{e}.{name}.bias"))?;
        let y = graph.matmul_nt(input, w)?;
        graph.add_bias(y, b)
    };

    let q = fc(graph, "attention.query", x)?;
    let k = fc(graph, "attention.key", x)?;
    let v = fc(graph, "attention.value", x)?;
    let qh = graph.split_heads(q, dims.heads)?;
    let kh = graph.split_heads(k, dims.heads)?;
    let vh = graph.split_heads(v, dims.heads)?;
    let kt = graph.transpose_batched(kh)?;
    let scores = graph.batch_matmul(qh, kt)?;
    let head_dim = dims.hidden / dims.heads;
    let scores = graph.scale(scores, 1.0 / (head_dim as f32).sqrt());
    let probs = graph.softmax(scores)?;
    let ctx = graph.batch_matmul(probs, vh)?;
    let merged = graph.merge_heads(ctx)?;
    let attn = fc(graph, "attention.output", merged)?;
    let res = graph.add(x, attn)?;
    let g1 = bound.var(&format!("encoder.{e}.attention.ln.gamma"))?;
    let b1 = bound.var(&format!("encoder.{e}.attention.ln.beta"))?;
    let x = graph.layer_norm(res, g1, b1, LAYER_NORM_EPS)?;

    let inter = fc(graph, "intermediate", x)?;
    let inter = graph.gelu(inter);
    let out = fc(graph, "output", inter)?;
    let res = graph.add(x, out)?;
    let g2 = bound.var(&format!("encoder.{e}.output.ln.gamma"))?;
    let b2 = bound.var(&format!("encoder.{e}.output.ln.beta"))?;
    graph.layer_norm(res, g2, b2, LAYER_NORM_EPS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dims() -> EncoderDims {
        EncoderDims {
            layers: 1,
            hidden: 16,
            heads: 2,
            intermediate: 32,
            vocab: 12,
            max_position: 8,
            type_vocab: 2,
        }
    }

    #[test]
    fn init_creates_model_compatible_names() {
        let p = init_encoder_params(&dims(), &mut StdRng::seed_from_u64(1)).unwrap();
        for name in [
            "embeddings.word",
            "embeddings.position",
            "embeddings.token_type",
            "embeddings.ln.gamma",
            "encoder.0.attention.query",
            "encoder.0.attention.query.bias",
            "encoder.0.attention.ln.beta",
            "encoder.0.intermediate",
            "encoder.0.output",
            "encoder.0.output.ln.gamma",
            "pooler",
            "pooler.bias",
        ] {
            assert!(p.get(name).is_ok(), "missing {name}");
        }
    }

    #[test]
    fn validates_dims() {
        let mut d = dims();
        d.heads = 3; // 16 % 3 != 0
        assert!(init_encoder_params(&d, &mut StdRng::seed_from_u64(1)).is_err());
        let mut d = dims();
        d.layers = 0;
        assert!(d.validate().is_err());
        let mut d = dims();
        d.vocab = 0;
        assert!(d.validate().is_err());
    }

    #[test]
    fn forward_produces_finite_pooled_output() {
        let d = dims();
        let p = init_encoder_params(&d, &mut StdRng::seed_from_u64(2)).unwrap();
        let mut g = Graph::new();
        let bound = BoundParams::bind(&mut g, &p);
        let out = encoder_forward(&mut g, &bound, &d, &[1, 2, 3], &[]).unwrap();
        assert_eq!(g.value(out.hidden).dims(), &[3, 16]);
        assert_eq!(g.value(out.pooled).dims(), &[1, 16]);
        assert!(g.value(out.pooled).all_finite());
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let d = dims();
        let p = init_encoder_params(&d, &mut StdRng::seed_from_u64(3)).unwrap();
        let mut g = Graph::new();
        let bound = BoundParams::bind(&mut g, &p);
        let out = encoder_forward(&mut g, &bound, &d, &[1, 2, 3, 4], &[0, 0, 1, 1]).unwrap();
        let loss = g.mean(out.pooled).unwrap();
        let grads = g.backward(loss).unwrap();
        let named: Vec<&str> = bound.named_gradients(&grads).map(|(n, _)| n).collect();
        // Everything except the unused tail of the embedding tables must
        // receive gradient; in particular every FC weight and LayerNorm.
        for name in [
            "embeddings.word",
            "embeddings.position",
            "embeddings.token_type",
            "encoder.0.attention.query",
            "encoder.0.attention.key",
            "encoder.0.attention.value",
            "encoder.0.attention.output",
            "encoder.0.intermediate",
            "encoder.0.output",
            "encoder.0.attention.ln.gamma",
            "encoder.0.output.ln.beta",
            "pooler",
            "pooler.bias",
        ] {
            assert!(named.contains(&name), "no gradient for {name}");
        }
    }

    #[test]
    fn one_epoch_reduces_loss_on_toy_classification() {
        // Classify whether the first token is < vocab/2, from the pooled
        // output through a small head. A single encoder layer must be
        // able to learn this quickly.
        let d = dims();
        let mut rng = StdRng::seed_from_u64(4);
        let mut params = init_encoder_params(&d, &mut rng).unwrap();
        params.insert("head", xavier_normal(&mut rng, 2, d.hidden));
        params.insert("head.bias", Tensor::zeros(&[2]));
        let mut adam = Adam::new(5e-3).unwrap();

        let examples: Vec<(Vec<usize>, usize)> = (0..24)
            .map(|i| {
                let first = i % d.vocab;
                (
                    vec![first, (i * 5) % d.vocab, (i * 3) % d.vocab],
                    usize::from(first < d.vocab / 2),
                )
            })
            .collect();

        let epoch_loss = |params: &ParamSet| -> f32 {
            examples
                .iter()
                .map(|(ids, label)| {
                    let mut g = Graph::new();
                    let bound = BoundParams::bind(&mut g, params);
                    let out = encoder_forward(&mut g, &bound, &d, ids, &[]).unwrap();
                    let hw = bound.var("head").unwrap();
                    let hb = bound.var("head.bias").unwrap();
                    let logits = g.matmul_nt(out.pooled, hw).unwrap();
                    let logits = g.add_bias(logits, hb).unwrap();
                    let loss = g.cross_entropy(logits, &[*label]).unwrap();
                    g.value(loss).as_slice()[0]
                })
                .sum::<f32>()
                / examples.len() as f32
        };

        let before = epoch_loss(&params);
        for _ in 0..3 {
            for (ids, label) in &examples {
                let mut g = Graph::new();
                let bound = BoundParams::bind(&mut g, &params);
                let out = encoder_forward(&mut g, &bound, &d, ids, &[]).unwrap();
                let hw = bound.var("head").unwrap();
                let hb = bound.var("head.bias").unwrap();
                let logits = g.matmul_nt(out.pooled, hw).unwrap();
                let logits = g.add_bias(logits, hb).unwrap();
                let loss = g.cross_entropy(logits, &[*label]).unwrap();
                let grads = g.backward(loss).unwrap();
                adam.step(&mut params, bound.named_gradients(&grads)).unwrap();
            }
        }
        let after = epoch_loss(&params);
        assert!(after < before * 0.8, "loss {before} -> {after}");
    }
}
