//! Minimal training substrate: tape-based reverse-mode autograd plus
//! Adam, sufficient to train the tiny BERT-style encoders used by the
//! accuracy experiments.
//!
//! GOBO itself never trains — its whole point is post-training
//! quantization. Training only exists in this reproduction because we
//! cannot ship the fine-tuned checkpoints the paper starts from, so we
//! produce task-performing models in-repo (see `gobo-tasks`) and then
//! quantize them.
//!
//! The engine is a classic tape: [`tape::Graph`] records every forward
//! op on append-only nodes, and [`tape::Graph::backward`] walks the
//! tape in reverse accumulating gradients. Supported ops are exactly
//! what a BERT encoder needs (matmul against transposed weights, bias
//! add, LayerNorm, softmax, GELU/tanh, embedding gather, residual add,
//! head split/merge, batched matmul) plus cross-entropy and MSE losses.
//!
//! # Example
//!
//! ```
//! use gobo_tensor::Tensor;
//! use gobo_train::tape::Graph;
//!
//! let mut g = Graph::new();
//! let w = g.parameter(Tensor::from_vec(vec![1.0, -1.0], &[1, 2])?);
//! let x = g.constant(Tensor::from_vec(vec![3.0, 4.0], &[1, 2])?);
//! let y = g.matmul_nt(x, w)?; // (1,1): 3·1 + 4·(−1) = −1
//! let loss = g.mean(y)?;
//! let grads = g.backward(loss)?;
//! let gw = grads.get(w).expect("parameter gradient");
//! assert_eq!(gw.as_slice(), &[3.0, 4.0]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod error;
pub mod layers;
pub mod optim;
pub mod params;
pub mod tape;

pub use error::TrainError;
pub use optim::Adam;
pub use params::ParamSet;
pub use tape::{Graph, VarId};
