//! Optimizers over named parameter sets.

use std::collections::BTreeMap;

use gobo_tensor::Tensor;

use crate::error::TrainError;
use crate::params::ParamSet;

/// Adam with optional global-norm gradient clipping — the de-facto
/// transformer fine-tuning optimizer.
///
/// # Example
///
/// ```
/// use gobo_tensor::Tensor;
/// use gobo_train::{Adam, ParamSet};
///
/// let mut params = ParamSet::new();
/// params.insert("w", Tensor::from_vec(vec![1.0], &[1])?);
/// let mut adam = Adam::new(0.1)?;
/// // Gradient of f(w) = w² at w=1 is 2: one step moves w toward 0.
/// let grad = Tensor::from_vec(vec![2.0], &[1])?;
/// adam.step(&mut params, [("w", &grad)].into_iter())?;
/// assert!(params.get("w")?.as_slice()[0] < 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    clip_norm: Option<f32>,
    step_count: u64,
    first_moment: BTreeMap<String, Tensor>,
    second_moment: BTreeMap<String, Tensor>,
}

impl Adam {
    /// Creates Adam with the standard moments (β₁ 0.9, β₂ 0.999).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidHyperparameter`] for a non-positive
    /// or non-finite learning rate.
    pub fn new(learning_rate: f32) -> Result<Self, TrainError> {
        if !(learning_rate.is_finite() && learning_rate > 0.0) {
            return Err(TrainError::InvalidHyperparameter { name: "learning_rate" });
        }
        Ok(Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: None,
            step_count: 0,
            first_moment: BTreeMap::new(),
            second_moment: BTreeMap::new(),
        })
    }

    /// Enables global-norm gradient clipping.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidHyperparameter`] for a non-positive
    /// or non-finite bound.
    pub fn with_clip_norm(mut self, max_norm: f32) -> Result<Self, TrainError> {
        if !(max_norm.is_finite() && max_norm > 0.0) {
            return Err(TrainError::InvalidHyperparameter { name: "clip_norm" });
        }
        self.clip_norm = Some(max_norm);
        Ok(self)
    }

    /// Number of optimizer steps taken so far.
    pub fn step_count(&self) -> u64 {
        self.step_count
    }

    /// Applies one update from `(name, gradient)` pairs.
    ///
    /// Parameters without a gradient this step keep their value (their
    /// moment estimates are not decayed either, matching "lazy" Adam
    /// semantics for sparse updates such as embedding tables).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::UnknownParameter`] when a gradient names a
    /// parameter the set does not contain, and propagates shape
    /// mismatches as [`TrainError::Tensor`].
    pub fn step<'a, I>(&mut self, params: &mut ParamSet, grads: I) -> Result<(), TrainError>
    where
        I: Iterator<Item = (&'a str, &'a Tensor)>,
    {
        self.step_count += 1;
        let t = self.step_count as i32;
        let bias1 = 1.0 - self.beta1.powi(t);
        let bias2 = 1.0 - self.beta2.powi(t);

        let collected: Vec<(&str, &Tensor)> = grads.collect();
        let scale = match self.clip_norm {
            Some(max) => {
                let norm = collected
                    .iter()
                    .flat_map(|(_, g)| g.as_slice())
                    .map(|&v| f64::from(v) * f64::from(v))
                    .sum::<f64>()
                    .sqrt() as f32;
                if norm > max {
                    max / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };

        for (name, grad) in collected {
            let value = params.get_mut(name)?;
            if value.dims() != grad.dims() {
                return Err(gobo_tensor::TensorError::ShapeMismatch {
                    op: "adam_step",
                    lhs: value.dims().to_vec(),
                    rhs: grad.dims().to_vec(),
                }
                .into());
            }
            let m = self
                .first_moment
                .entry(name.to_owned())
                .or_insert_with(|| Tensor::zeros(grad.dims()));
            let v = self
                .second_moment
                .entry(name.to_owned())
                .or_insert_with(|| Tensor::zeros(grad.dims()));
            let lr = self.learning_rate;
            let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);
            let pv = value.as_mut_slice();
            let ms = m.as_mut_slice();
            let vs = v.as_mut_slice();
            for i in 0..pv.len() {
                let g = grad.as_slice()[i] * scale;
                ms[i] = b1 * ms[i] + (1.0 - b1) * g;
                vs[i] = b2 * vs[i] + (1.0 - b2) * g * g;
                let m_hat = ms[i] / bias1;
                let v_hat = vs[i] / bias2;
                pv[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_param(v: f32) -> ParamSet {
        let mut p = ParamSet::new();
        p.insert("w", Tensor::from_vec(vec![v], &[1]).unwrap());
        p
    }

    #[test]
    fn minimizes_quadratic() {
        // f(w) = (w - 3)², gradient 2(w - 3).
        let mut params = scalar_param(0.0);
        let mut adam = Adam::new(0.1).unwrap();
        for _ in 0..500 {
            let w = params.get("w").unwrap().as_slice()[0];
            let grad = Tensor::from_vec(vec![2.0 * (w - 3.0)], &[1]).unwrap();
            adam.step(&mut params, [("w", &grad)].into_iter()).unwrap();
        }
        let w = params.get("w").unwrap().as_slice()[0];
        assert!((w - 3.0).abs() < 0.05, "converged to {w}");
    }

    #[test]
    fn first_step_magnitude_is_learning_rate() {
        // With bias correction, |Δw| of the first step ≈ lr regardless
        // of gradient scale.
        for g0 in [0.001f32, 1.0, 1000.0] {
            let mut params = scalar_param(0.0);
            let mut adam = Adam::new(0.01).unwrap();
            let grad = Tensor::from_vec(vec![g0], &[1]).unwrap();
            adam.step(&mut params, [("w", &grad)].into_iter()).unwrap();
            let w = params.get("w").unwrap().as_slice()[0];
            assert!((w.abs() - 0.01).abs() < 1e-4, "step {w} for gradient {g0}");
        }
    }

    #[test]
    fn clipping_bounds_update() {
        let mut a = scalar_param(0.0);
        let mut b = scalar_param(0.0);
        let huge = Tensor::from_vec(vec![1e6], &[1]).unwrap();
        let mut unclipped = Adam::new(0.1).unwrap();
        let mut clipped = Adam::new(0.1).unwrap().with_clip_norm(1.0).unwrap();
        unclipped.step(&mut a, [("w", &huge)].into_iter()).unwrap();
        clipped.step(&mut b, [("w", &huge)].into_iter()).unwrap();
        // Both move by ≈ lr on the first step (sign step), but the
        // clipped one must have seen a gradient of magnitude 1.
        assert_eq!(clipped.step_count(), 1);
        assert!(b.get("w").unwrap().as_slice()[0].abs() <= 0.11);
        assert!(a.get("w").unwrap().all_finite());
    }

    #[test]
    fn validates_hyperparameters() {
        assert!(Adam::new(0.0).is_err());
        assert!(Adam::new(-1.0).is_err());
        assert!(Adam::new(f32::NAN).is_err());
        assert!(Adam::new(0.1).unwrap().with_clip_norm(0.0).is_err());
    }

    #[test]
    fn unknown_parameter_rejected() {
        let mut params = scalar_param(0.0);
        let mut adam = Adam::new(0.1).unwrap();
        let g = Tensor::ones(&[1]);
        assert!(adam.step(&mut params, [("nope", &g)].into_iter()).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut params = scalar_param(0.0);
        let mut adam = Adam::new(0.1).unwrap();
        let g = Tensor::ones(&[2]);
        assert!(matches!(
            adam.step(&mut params, [("w", &g)].into_iter()),
            Err(TrainError::Tensor(_))
        ));
    }

    #[test]
    fn multi_param_step_updates_all() {
        let mut params = ParamSet::new();
        params.insert("a", Tensor::zeros(&[2]));
        params.insert("b", Tensor::zeros(&[3]));
        let ga = Tensor::ones(&[2]);
        let gb = Tensor::full(&[3], -1.0);
        let mut adam = Adam::new(0.05).unwrap();
        adam.step(&mut params, [("a", &ga), ("b", &gb)].into_iter()).unwrap();
        assert!(params.get("a").unwrap().as_slice().iter().all(|&v| v < 0.0));
        assert!(params.get("b").unwrap().as_slice().iter().all(|&v| v > 0.0));
    }
}
