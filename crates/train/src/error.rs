//! Error type for the training substrate.

use std::fmt;

use gobo_tensor::TensorError;

/// Error returned by fallible training operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// A tensor operation failed (shape mismatch etc.).
    Tensor(TensorError),
    /// A variable id did not belong to this graph.
    UnknownVar {
        /// The offending id's index.
        index: usize,
    },
    /// Backward was asked to start from a non-scalar variable.
    NonScalarLoss {
        /// The loss variable's element count.
        elements: usize,
    },
    /// Class/target indices disagreed with the logits' shape.
    TargetMismatch {
        /// Number of logit rows.
        rows: usize,
        /// Number of targets supplied.
        targets: usize,
    },
    /// A class index was out of range for the logits' width.
    ClassOutOfRange {
        /// The offending class index.
        class: usize,
        /// Number of classes.
        classes: usize,
    },
    /// A hyper-parameter was outside its valid domain.
    InvalidHyperparameter {
        /// The offending parameter's name.
        name: &'static str,
    },
    /// A named parameter was missing from a [`crate::ParamSet`].
    UnknownParameter {
        /// The requested name.
        name: String,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Tensor(e) => write!(f, "tensor failure: {e}"),
            TrainError::UnknownVar { index } => write!(f, "unknown variable id {index}"),
            TrainError::NonScalarLoss { elements } => {
                write!(f, "backward requires a scalar loss, got {elements} elements")
            }
            TrainError::TargetMismatch { rows, targets } => {
                write!(f, "{targets} targets for {rows} logit rows")
            }
            TrainError::ClassOutOfRange { class, classes } => {
                write!(f, "class {class} out of range for {classes} classes")
            }
            TrainError::InvalidHyperparameter { name } => {
                write!(f, "hyper-parameter `{name}` outside valid domain")
            }
            TrainError::UnknownParameter { name } => write!(f, "unknown parameter `{name}`"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for TrainError {
    fn from(e: TensorError) -> Self {
        TrainError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TrainError::NonScalarLoss { elements: 4 }.to_string().contains('4'));
        assert!(TrainError::UnknownParameter { name: "w".into() }.to_string().contains('w'));
        assert!(TrainError::ClassOutOfRange { class: 5, classes: 3 }.to_string().contains('5'));
    }

    #[test]
    fn tensor_error_converts() {
        use std::error::Error;
        let e: TrainError = TensorError::EmptyDimension { op: "softmax" }.into();
        assert!(e.source().is_some());
    }
}
