//! Named parameter storage shared between training steps.
//!
//! Each training step builds a fresh [`crate::Graph`], loads parameters
//! from a [`ParamSet`], and writes updated values back after the
//! optimizer step. Names follow the `gobo-model` convention
//! (`encoder.0.attention.query`, `pooler.bias`, …) so trained weights
//! export directly into an inference `TransformerModel`.

use std::collections::BTreeMap;

use gobo_tensor::Tensor;

use crate::error::TrainError;
use crate::tape::{Gradients, Graph, VarId};

/// An ordered map of named trainable tensors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamSet {
    params: BTreeMap<String, Tensor>,
}

impl ParamSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces a parameter, returning the previous value.
    pub fn insert(&mut self, name: impl Into<String>, value: Tensor) -> Option<Tensor> {
        self.params.insert(name.into(), value)
    }

    /// Borrows a parameter.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::UnknownParameter`] for unknown names.
    pub fn get(&self, name: &str) -> Result<&Tensor, TrainError> {
        self.params.get(name).ok_or_else(|| TrainError::UnknownParameter { name: name.into() })
    }

    /// Mutably borrows a parameter.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::UnknownParameter`] for unknown names.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Tensor, TrainError> {
        self.params.get_mut(name).ok_or_else(|| TrainError::UnknownParameter { name: name.into() })
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Returns `true` when the set holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Iterates `(name, tensor)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total number of scalar parameters.
    pub fn scalar_count(&self) -> usize {
        self.params.values().map(Tensor::len).sum()
    }
}

impl FromIterator<(String, Tensor)> for ParamSet {
    fn from_iter<I: IntoIterator<Item = (String, Tensor)>>(iter: I) -> Self {
        ParamSet { params: iter.into_iter().collect() }
    }
}

/// Binds a [`ParamSet`] to one [`Graph`], remembering which [`VarId`]
/// each named parameter received so gradients can be read back by
/// name.
#[derive(Debug)]
pub struct BoundParams {
    vars: BTreeMap<String, VarId>,
}

impl BoundParams {
    /// Records every parameter of `set` on `graph` as a trainable leaf.
    pub fn bind(graph: &mut Graph, set: &ParamSet) -> Self {
        let mut vars = BTreeMap::new();
        for (name, tensor) in set.iter() {
            vars.insert(name.to_owned(), graph.parameter(tensor.clone()));
        }
        BoundParams { vars }
    }

    /// The graph variable bound to `name`.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::UnknownParameter`] for unknown names.
    pub fn var(&self, name: &str) -> Result<VarId, TrainError> {
        self.vars
            .get(name)
            .copied()
            .ok_or_else(|| TrainError::UnknownParameter { name: name.into() })
    }

    /// Extracts `(name, gradient)` pairs for every bound parameter that
    /// received a gradient.
    pub fn named_gradients<'a>(
        &'a self,
        grads: &'a Gradients,
    ) -> impl Iterator<Item = (&'a str, &'a Tensor)> {
        self.vars.iter().filter_map(|(name, &var)| grads.get(var).map(|g| (name.as_str(), g)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_iterate() {
        let mut p = ParamSet::new();
        assert!(p.is_empty());
        p.insert("b", Tensor::zeros(&[2]));
        p.insert("a", Tensor::ones(&[3]));
        assert_eq!(p.len(), 2);
        assert_eq!(p.scalar_count(), 5);
        assert!(p.get("a").is_ok());
        assert!(p.get("missing").is_err());
        // Name-ordered iteration.
        let names: Vec<&str> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn bind_and_read_gradients_by_name() {
        let mut set = ParamSet::new();
        set.insert("w", Tensor::from_vec(vec![2.0, 3.0], &[2]).unwrap());
        set.insert("frozen_like", Tensor::ones(&[1]));

        let mut g = Graph::new();
        let bound = BoundParams::bind(&mut g, &set);
        let w = bound.var("w").unwrap();
        let loss = {
            let sq = g.mul(w, w).unwrap();
            g.mean(sq).unwrap()
        };
        let grads = g.backward(loss).unwrap();
        let named: std::collections::BTreeMap<&str, &Tensor> =
            bound.named_gradients(&grads).collect();
        // d/dw mean(w²) = 2w/n = w.
        assert_eq!(named["w"].as_slice(), &[2.0, 3.0]);
        assert!(!named.contains_key("frozen_like"));
        assert!(bound.var("missing").is_err());
    }

    #[test]
    fn from_iterator_collects() {
        let p: ParamSet = vec![("x".to_owned(), Tensor::zeros(&[1]))].into_iter().collect();
        assert_eq!(p.len(), 1);
    }
}
