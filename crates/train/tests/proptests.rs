//! Property tests for the autograd engine: linearity, determinism, and
//! optimizer invariants that hold for arbitrary small graphs.

use gobo_tensor::Tensor;
use gobo_train::{Adam, Graph, ParamSet};
use proptest::prelude::*;

fn small_tensor(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec((-2.0f32..2.0).prop_map(|v| (v * 128.0).round() / 128.0), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gradient_of_scaled_loss_scales(vals in small_tensor(6), s in 0.25f32..4.0) {
        // d(s·f)/dw = s · df/dw.
        let grad_of = |scale: f32| -> Vec<f32> {
            let mut g = Graph::new();
            let w = g.parameter(Tensor::from_vec(vals.clone(), &[2, 3]).unwrap());
            let y = g.gelu(w);
            let y = g.scale(y, scale);
            let loss = g.mean(y).unwrap();
            let grads = g.backward(loss).unwrap();
            grads.get(w).unwrap().as_slice().to_vec()
        };
        let base = grad_of(1.0);
        let scaled = grad_of(s);
        for (a, b) in base.iter().zip(&scaled) {
            prop_assert!((a * s - b).abs() < 1e-4 + b.abs() * 1e-4, "{a}*{s} vs {b}");
        }
    }

    #[test]
    fn gradients_are_deterministic(vals in small_tensor(8)) {
        let run = || -> Vec<f32> {
            let mut g = Graph::new();
            let w = g.parameter(Tensor::from_vec(vals.clone(), &[2, 4]).unwrap());
            let t = g.tanh(w);
            let sq = g.mul(t, t).unwrap();
            let loss = g.mean(sq).unwrap();
            let grads = g.backward(loss).unwrap();
            grads.get(w).unwrap().as_slice().to_vec()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn sum_rule_holds(vals in small_tensor(4)) {
        // grad(mean(f) + mean(g)) == grad(mean(f)) + grad(mean(g)).
        let tensor = Tensor::from_vec(vals.clone(), &[4]).unwrap();
        let separate = {
            let mut g = Graph::new();
            let w = g.parameter(tensor.clone());
            let a = g.gelu(w);
            let la = g.mean(a).unwrap();
            let grads_a = g.backward(la).unwrap();
            let ga = grads_a.get(w).unwrap().clone();
            let mut g2 = Graph::new();
            let w2 = g2.parameter(tensor.clone());
            let b = g2.tanh(w2);
            let lb = g2.mean(b).unwrap();
            let grads_b = g2.backward(lb).unwrap();
            ga.add(grads_b.get(w2).unwrap()).unwrap()
        };
        let joint = {
            let mut g = Graph::new();
            let w = g.parameter(tensor);
            let a = g.gelu(w);
            let b = g.tanh(w);
            let la = g.mean(a).unwrap();
            let lb = g.mean(b).unwrap();
            let sum = g.add(la, lb).unwrap();
            let grads = g.backward(sum).unwrap();
            grads.get(w).unwrap().clone()
        };
        for (a, b) in separate.as_slice().iter().zip(joint.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn adam_steps_shrink_quadratic_loss(start in small_tensor(3), lr_mul in 1u32..5) {
        let lr = 0.01 * lr_mul as f32;
        let mut params = ParamSet::new();
        params.insert("w", Tensor::from_vec(start.clone(), &[3]).unwrap());
        let mut adam = Adam::new(lr).unwrap();
        let loss_of = |p: &ParamSet| -> f32 {
            p.get("w").unwrap().as_slice().iter().map(|v| v * v).sum()
        };
        let initial = loss_of(&params);
        for _ in 0..200 {
            let w = params.get("w").unwrap().clone();
            let grad = w.scale(2.0);
            adam.step(&mut params, [("w", &grad)].into_iter()).unwrap();
        }
        let final_loss = loss_of(&params);
        prop_assert!(final_loss <= initial + 1e-6, "{initial} -> {final_loss}");
        // With 200 steps the quadratic must be substantially reduced
        // unless it started at ~0.
        if initial > 0.1 {
            prop_assert!(final_loss < initial * 0.5, "{initial} -> {final_loss}");
        }
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero(logits in small_tensor(6)) {
        // Softmax-minus-onehot rows each sum to zero.
        let mut g = Graph::new();
        let w = g.parameter(Tensor::from_vec(logits, &[2, 3]).unwrap());
        let loss = g.cross_entropy(w, &[0, 2]).unwrap();
        let grads = g.backward(loss).unwrap();
        let dw = grads.get(w).unwrap();
        for r in 0..2 {
            let s: f32 = dw.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {r} sums to {s}");
        }
    }
}
