//! Ragged batched encoder forward pass.
//!
//! A coalesced serve batch holds sequences of *different* lengths. This
//! module stacks them into one `(Σ lenᵢ, hidden)` activation panel so
//! every FC product — the operations that dominate encoder cost and the
//! ones a compute-on-compressed backend amortizes across rows — runs
//! once per layer over the whole batch. Only self-attention, which
//! mixes information *within* a sequence, is computed per sequence on a
//! row slice of the panel.
//!
//! ## Bit-identity
//!
//! Every stacked operation (FC products, bias adds, GELU/tanh,
//! per-row LayerNorm, per-sequence attention) treats each activation
//! row independently and in the same order as the solo path, so
//! [`TransformerModel::encode_batch`] produces outputs **bitwise
//! identical** to calling [`TransformerModel::encode`] once per
//! sequence. The serve tier's byte-identical parity tests rely on this.

use gobo_tensor::embed::gather_rows;
use gobo_tensor::linalg::{merge_heads, split_heads, transpose_batched};
use gobo_tensor::norm::LAYER_NORM_EPS;
use gobo_tensor::Tensor;

use crate::compute::{DenseCompute, WeightCompute};
use crate::error::ModelError;
use crate::forward::EncoderOutput;
use crate::weights::TransformerModel;

/// One sequence of a ragged encode batch.
#[derive(Debug, Clone, Copy)]
pub struct EncodeInput<'a> {
    /// Token ids, non-empty and within the model vocabulary.
    pub ids: &'a [usize],
    /// Token type ids: empty (all zeros) or `ids.len()` entries.
    pub type_ids: &'a [usize],
}

impl TransformerModel {
    /// Runs the encoder over a ragged batch of sequences using the
    /// dense FP32 weights.
    ///
    /// Returns one [`EncoderOutput`] per input, in order, bitwise
    /// identical to encoding each sequence alone.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] for an empty batch or if
    /// *any* sequence fails validation (no partial results), and
    /// propagates tensor failures.
    pub fn encode_batch(
        &self,
        inputs: &[EncodeInput<'_>],
    ) -> Result<Vec<EncoderOutput>, ModelError> {
        self.encode_batch_with(&DenseCompute, inputs)
    }

    /// [`TransformerModel::encode_batch`] with a pluggable
    /// [`WeightCompute`] backend for the FC products.
    ///
    /// # Errors
    ///
    /// As [`TransformerModel::encode_batch`], plus whatever the backend
    /// reports.
    pub fn encode_batch_with<C: WeightCompute + ?Sized>(
        &self,
        compute: &C,
        inputs: &[EncodeInput<'_>],
    ) -> Result<Vec<EncoderOutput>, ModelError> {
        let config = self.config();
        if inputs.is_empty() {
            return Err(ModelError::InvalidInput { what: "empty encode batch" });
        }
        for input in inputs {
            self.validate_input(input.ids, input.type_ids)?;
        }

        // Row offsets of each sequence inside the stacked panel:
        // sequence `b` occupies rows `offsets[b] .. offsets[b + 1]`.
        let mut offsets = Vec::with_capacity(inputs.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for input in inputs {
            total += input.ids.len();
            offsets.push(total);
        }

        // --- Embeddings (stacked) -----------------------------------------
        let all_ids: Vec<usize> =
            inputs.iter().flat_map(|input| input.ids.iter().copied()).collect();
        let word = gather_rows(self.weight("embeddings.word")?, &all_ids)?;
        let positions: Vec<usize> = inputs.iter().flat_map(|input| 0..input.ids.len()).collect();
        let pos = gather_rows(self.weight("embeddings.position")?, &positions)?;
        let mut x = word.add(&pos)?;
        if config.type_vocab > 0 {
            let mut types = Vec::with_capacity(total);
            for input in inputs {
                if input.type_ids.is_empty() {
                    types.resize(types.len() + input.ids.len(), 0);
                } else {
                    types.extend_from_slice(input.type_ids);
                }
            }
            let tt = gather_rows(self.weight("embeddings.token_type")?, &types)?;
            x = x.add(&tt)?;
        }
        x = x.layer_norm(
            self.aux("embeddings.ln.gamma")?,
            self.aux("embeddings.ln.beta")?,
            LAYER_NORM_EPS,
        )?;

        // --- Encoder stack -------------------------------------------------
        for e in 0..config.encoder_layers {
            x = self.encoder_layer_batched(compute, e, &x, &offsets)?;
        }

        // --- Pooler (stacked first-token rows) ------------------------------
        let hidden = config.hidden;
        let pooled_rows = if config.has_pooler {
            let xs = x.as_slice();
            let mut first = Vec::with_capacity(inputs.len() * hidden);
            for &off in &offsets[..inputs.len()] {
                first.extend_from_slice(&xs[off * hidden..(off + 1) * hidden]);
            }
            let first = Tensor::from_vec(first, &[inputs.len(), hidden])?;
            let z =
                compute.matmul_nt(self, "pooler", &first)?.add_bias(self.aux("pooler.bias")?)?;
            Some(z.tanh())
        } else {
            None
        };

        // --- Split the panel back into per-sequence outputs -----------------
        let xs = x.as_slice();
        let mut outputs = Vec::with_capacity(inputs.len());
        for (b, pair) in offsets.windows(2).enumerate() {
            let (start, end) = (pair[0], pair[1]);
            let hidden_t = Tensor::from_vec(
                xs[start * hidden..end * hidden].to_vec(),
                &[end - start, hidden],
            )?;
            let pooled = match &pooled_rows {
                Some(z) => Some(z.row(b)?),
                None => None,
            };
            outputs.push(EncoderOutput { hidden: hidden_t, pooled });
        }
        Ok(outputs)
    }

    /// One encoder layer over a stacked ragged panel: FC products run
    /// batched through `compute`; attention runs per sequence on its
    /// row slice.
    fn encoder_layer_batched<C: WeightCompute + ?Sized>(
        &self,
        compute: &C,
        e: usize,
        x: &Tensor,
        offsets: &[usize],
    ) -> Result<Tensor, ModelError> {
        let config = self.config();
        let prefix = format!("encoder.{e}");
        let fc = |name: &str, input: &Tensor| -> Result<Tensor, ModelError> {
            let full = format!("{prefix}.{name}");
            Ok(compute
                .matmul_nt(self, &full, input)?
                .add_bias(self.aux(&format!("{full}.bias"))?)?)
        };

        // Self-attention, per sequence. Context rows land back in one
        // stacked buffer at the same offsets.
        let q = fc("attention.query", x)?;
        let k = fc("attention.key", x)?;
        let v = fc("attention.value", x)?;
        let heads = config.heads;
        let hidden = config.hidden;
        let mut ctx_data = vec![0.0f32; x.len()];
        for pair in offsets.windows(2) {
            let (start, end) = (pair[0], pair[1]);
            let slice = |t: &Tensor| -> Result<Tensor, ModelError> {
                Ok(Tensor::from_vec(
                    t.as_slice()[start * hidden..end * hidden].to_vec(),
                    &[end - start, hidden],
                )?)
            };
            let qh = split_heads(&slice(&q)?, heads)?;
            let kh = split_heads(&slice(&k)?, heads)?;
            let vh = split_heads(&slice(&v)?, heads)?;
            let scores = qh
                .batch_matmul(&transpose_batched(&kh)?)?
                .scale(1.0 / (config.head_dim() as f32).sqrt());
            let probs = scores.softmax()?;
            let ctx = merge_heads(&probs.batch_matmul(&vh)?)?;
            ctx_data[start * hidden..end * hidden].copy_from_slice(ctx.as_slice());
        }
        let ctx = Tensor::from_vec(ctx_data, x.dims())?;
        let attn = fc("attention.output", &ctx)?;
        let x = x.add(&attn)?.layer_norm(
            self.aux(&format!("{prefix}.attention.ln.gamma"))?,
            self.aux(&format!("{prefix}.attention.ln.beta"))?,
            LAYER_NORM_EPS,
        )?;

        // Feed-forward, fully batched.
        let inter = fc("intermediate", &x)?.gelu();
        let out = fc("output", &inter)?;
        let x = x.add(&out)?.layer_norm(
            self.aux(&format!("{prefix}.output.ln.gamma"))?,
            self.aux(&format!("{prefix}.output.ln.beta"))?,
            LAYER_NORM_EPS,
        )?;
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> TransformerModel {
        let config = ModelConfig::tiny("Tiny", 2, 32, 4, 64, 16).unwrap();
        TransformerModel::new(config, &mut StdRng::seed_from_u64(3)).unwrap()
    }

    #[test]
    fn ragged_batch_is_bitwise_identical_to_solo() {
        let m = tiny();
        let seqs: Vec<Vec<usize>> =
            vec![vec![1, 2, 3, 4, 5], vec![9], vec![7, 7, 7, 7, 7, 7, 7, 7], vec![60, 61, 62]];
        let type_ids: Vec<Vec<usize>> = vec![vec![], vec![1], vec![], vec![0, 1, 1]];
        let inputs: Vec<EncodeInput<'_>> = seqs
            .iter()
            .zip(&type_ids)
            .map(|(ids, tys)| EncodeInput { ids, type_ids: tys })
            .collect();

        let batched = m.encode_batch(&inputs).unwrap();
        assert_eq!(batched.len(), inputs.len());
        for (input, got) in inputs.iter().zip(&batched) {
            let solo = m.encode(input.ids, input.type_ids).unwrap();
            assert_eq!(got.hidden.dims(), solo.hidden.dims());
            for (a, b) in got.hidden.as_slice().iter().zip(solo.hidden.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            let (gp, sp) = (got.pooled.as_ref().unwrap(), solo.pooled.as_ref().unwrap());
            assert_eq!(gp.dims(), sp.dims());
            for (a, b) in gp.as_slice().iter().zip(sp.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn batch_of_one_matches_solo() {
        let m = tiny();
        let ids = [4usize, 4, 4];
        let tys = [0usize, 0, 1];
        let batched = m.encode_batch(&[EncodeInput { ids: &ids, type_ids: &tys }]).unwrap();
        let solo = m.encode(&ids, &tys).unwrap();
        assert_eq!(batched[0], solo);
    }

    #[test]
    fn batch_without_pooler() {
        let mut config = ModelConfig::tiny("TinyD", 1, 16, 2, 30, 8).unwrap();
        config.has_pooler = false;
        config.type_vocab = 0;
        let m = TransformerModel::new(config, &mut StdRng::seed_from_u64(5)).unwrap();
        let ids_a = [1usize, 2, 3];
        let ids_b = [4usize, 5];
        let batched = m
            .encode_batch(&[
                EncodeInput { ids: &ids_a, type_ids: &[] },
                EncodeInput { ids: &ids_b, type_ids: &[] },
            ])
            .unwrap();
        assert!(batched[0].pooled.is_none());
        assert_eq!(batched[0], m.encode(&ids_a, &[]).unwrap());
        assert_eq!(batched[1], m.encode(&ids_b, &[]).unwrap());
    }

    #[test]
    fn batch_validation() {
        let m = tiny();
        assert!(m.encode_batch(&[]).is_err());
        let good = [1usize, 2];
        let bad = [999usize];
        // One bad apple fails the whole batch, before any compute.
        assert!(m
            .encode_batch(&[
                EncodeInput { ids: &good, type_ids: &[] },
                EncodeInput { ids: &bad, type_ids: &[] },
            ])
            .is_err());
        assert!(m.encode_batch(&[EncodeInput { ids: &[], type_ids: &[] }]).is_err());
    }
}
