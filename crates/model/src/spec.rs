//! The layer registry: every quantizable weight matrix in a model.
//!
//! Figure 3 of the paper plots outlier fractions across "all 73 FC
//! layers" of BERT-Base; Tables III–VII distinguish FC weights from
//! embedding tables. [`enumerate_fc_layers`] and
//! [`enumerate_embedding_tables`] produce exactly those populations,
//! with stable names consumed by the mixed-precision rules in
//! `gobo-quant`.

use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;

/// What role a weight matrix plays, mirroring Figure 1a's blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Self-attention query projection.
    Query,
    /// Self-attention key projection.
    Key,
    /// Self-attention value projection.
    Value,
    /// Self-attention output projection.
    AttentionOutput,
    /// The widening intermediate FC.
    Intermediate,
    /// The narrowing output FC.
    Output,
    /// The final pooler FC.
    Pooler,
    /// Word-piece embedding table.
    WordEmbedding,
    /// Position embedding table.
    PositionEmbedding,
    /// Token-type (segment) embedding table.
    TokenTypeEmbedding,
}

impl LayerKind {
    /// Returns `true` for the embedding-table kinds.
    pub fn is_embedding(&self) -> bool {
        matches!(
            self,
            LayerKind::WordEmbedding | LayerKind::PositionEmbedding | LayerKind::TokenTypeEmbedding
        )
    }
}

/// Name and geometry of one weight matrix.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FcLayerSpec {
    /// Stable name, e.g. `encoder.3.attention.value` or
    /// `embeddings.word`.
    pub name: String,
    /// Which block the matrix belongs to.
    pub kind: LayerKind,
    /// Encoder index for per-encoder layers; `None` for pooler and
    /// embeddings.
    pub encoder: Option<usize>,
    /// Output features (rows; weights are stored `(rows, cols)`).
    pub rows: usize,
    /// Input features (columns).
    pub cols: usize,
}

impl FcLayerSpec {
    /// Number of weights in the matrix.
    pub fn params(&self) -> usize {
        self.rows * self.cols
    }
}

/// Enumerates every FC weight matrix of a model in forward order:
/// per-encoder query, key, value, attention-output, intermediate,
/// output; then the pooler (when present).
pub fn enumerate_fc_layers(config: &ModelConfig) -> Vec<FcLayerSpec> {
    let h = config.hidden;
    let i = config.intermediate;
    let mut out = Vec::with_capacity(config.fc_layer_count());
    for e in 0..config.encoder_layers {
        let mk = |component: &str, kind: LayerKind, rows: usize, cols: usize| FcLayerSpec {
            name: format!("encoder.{e}.{component}"),
            kind,
            encoder: Some(e),
            rows,
            cols,
        };
        out.push(mk("attention.query", LayerKind::Query, h, h));
        out.push(mk("attention.key", LayerKind::Key, h, h));
        out.push(mk("attention.value", LayerKind::Value, h, h));
        out.push(mk("attention.output", LayerKind::AttentionOutput, h, h));
        out.push(mk("intermediate", LayerKind::Intermediate, i, h));
        out.push(mk("output", LayerKind::Output, h, i));
    }
    if config.has_pooler {
        out.push(FcLayerSpec {
            name: "pooler".into(),
            kind: LayerKind::Pooler,
            encoder: None,
            rows: h,
            cols: h,
        });
    }
    out
}

/// Enumerates the embedding tables of a model (word, position, and —
/// when the model has segments — token-type).
pub fn enumerate_embedding_tables(config: &ModelConfig) -> Vec<FcLayerSpec> {
    let mut out = vec![
        FcLayerSpec {
            name: "embeddings.word".into(),
            kind: LayerKind::WordEmbedding,
            encoder: None,
            rows: config.vocab,
            cols: config.hidden,
        },
        FcLayerSpec {
            name: "embeddings.position".into(),
            kind: LayerKind::PositionEmbedding,
            encoder: None,
            rows: config.max_position,
            cols: config.hidden,
        },
    ];
    if config.type_vocab > 0 {
        out.push(FcLayerSpec {
            name: "embeddings.token_type".into(),
            kind: LayerKind::TokenTypeEmbedding,
            encoder: None,
            rows: config.type_vocab,
            cols: config.hidden,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_base_has_73_fc_layers() {
        let layers = enumerate_fc_layers(&ModelConfig::bert_base());
        assert_eq!(layers.len(), 73);
        assert_eq!(layers.last().unwrap().name, "pooler");
    }

    #[test]
    fn bert_large_has_145_fc_layers() {
        assert_eq!(enumerate_fc_layers(&ModelConfig::bert_large()).len(), 145);
    }

    #[test]
    fn distilbert_has_no_pooler() {
        let layers = enumerate_fc_layers(&ModelConfig::distilbert());
        assert_eq!(layers.len(), 36);
        assert!(layers.iter().all(|l| l.kind != LayerKind::Pooler));
    }

    #[test]
    fn params_sum_matches_config() {
        for config in [
            ModelConfig::bert_base(),
            ModelConfig::bert_large(),
            ModelConfig::distilbert(),
            ModelConfig::roberta_base(),
        ] {
            let total: usize = enumerate_fc_layers(&config).iter().map(|l| l.params()).sum();
            assert_eq!(total, config.fc_weight_params(), "{}", config.name);
        }
    }

    #[test]
    fn names_are_unique_and_parseable() {
        let layers = enumerate_fc_layers(&ModelConfig::bert_base());
        let names: std::collections::HashSet<_> = layers.iter().map(|l| &l.name).collect();
        assert_eq!(names.len(), layers.len());
        // Encoder-scoped names carry their index.
        for l in &layers {
            if let Some(e) = l.encoder {
                assert!(l.name.starts_with(&format!("encoder.{e}.")));
            }
        }
    }

    #[test]
    fn intermediate_and_output_dims_match_table1() {
        let layers = enumerate_fc_layers(&ModelConfig::bert_base());
        let inter = layers.iter().find(|l| l.kind == LayerKind::Intermediate).unwrap();
        assert_eq!((inter.rows, inter.cols), (3072, 768));
        let out = layers.iter().find(|l| l.kind == LayerKind::Output).unwrap();
        assert_eq!((out.rows, out.cols), (768, 3072));
    }

    #[test]
    fn embedding_tables_enumerate() {
        let tables = enumerate_embedding_tables(&ModelConfig::bert_base());
        assert_eq!(tables.len(), 3);
        assert!(tables.iter().all(|t| t.kind.is_embedding()));
        assert_eq!(tables[0].params(), 30_522 * 768);
        // DistilBERT drops token-type embeddings.
        assert_eq!(enumerate_embedding_tables(&ModelConfig::distilbert()).len(), 2);
    }
}
