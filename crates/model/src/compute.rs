//! Pluggable weight-product backends for the forward pass.
//!
//! The encoder's FC layers are pure `activation × weightᵀ` products
//! against *named* weight matrices, so the forward pass can be made
//! generic over how that product is computed: the dense FP32 path
//! multiplies against the decoded tensor, while a serving engine can
//! route archived layers to a compute-on-compressed kernel that never
//! materializes the dense matrix. Everything else about the forward
//! pass (embeddings, attention shape-shuffling, LayerNorms, biases) is
//! shared.
//!
//! The contract a backend must honour: the returned tensor equals
//! `input.matmul_nt(model.weight(name)?)` **bit for bit**. Backends
//! that only match within a tolerance would make served outputs depend
//! on which backend answered, breaking the serve tier's byte-identical
//! parity guarantee.

use gobo_tensor::Tensor;

use crate::error::ModelError;
use crate::weights::TransformerModel;

/// A backend computing `input × W(name)ᵀ` for the forward pass.
pub trait WeightCompute {
    /// Computes `input.matmul_nt(W)` for the named weight, bit-for-bit
    /// equal to the dense product against `model.weight(name)`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownLayer`] for unknown names and
    /// propagates tensor failures.
    fn matmul_nt(
        &self,
        model: &TransformerModel,
        name: &str,
        input: &Tensor,
    ) -> Result<Tensor, ModelError>;
}

/// The default backend: multiply against the model's dense FP32
/// weights.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseCompute;

impl WeightCompute for DenseCompute {
    fn matmul_nt(
        &self,
        model: &TransformerModel,
        name: &str,
        input: &Tensor,
    ) -> Result<Tensor, ModelError> {
        Ok(input.matmul_nt(model.weight(name)?)?)
    }
}
