//! Raw-model file format: an FP32 `TransformerModel` on disk.
//!
//! The reproduction cannot depend on external serialization formats,
//! so this is a small, self-describing little-endian binary layout:
//!
//! ```text
//! file   := magic:u32 "GOBm" | version:u8 | flags:u8 (bit0 = pooler) | pad:[u8;2]
//!         | name_len:u16 | name:utf8
//!         | encoder_layers:u32 | hidden:u32 | intermediate:u32 | heads:u32
//!         | vocab:u32 | max_position:u32 | type_vocab:u32
//!         | tensor_count:u32 | tensor*
//! tensor := name_len:u16 | name:utf8 | rank:u8 | dims:[u32; rank] | data:[f32]
//! ```
//!
//! Both the quantizable weights and the auxiliary parameters (biases,
//! LayerNorm) are stored, so a round trip reproduces the model exactly.

use gobo_tensor::Tensor;

use crate::config::ModelConfig;
use crate::error::ModelError;
use crate::weights::TransformerModel;

/// Magic prefix of a raw model file.
pub const MODEL_MAGIC: u32 = u32::from_le_bytes(*b"GOBm");
/// Current raw-model format version.
pub const MODEL_FORMAT_VERSION: u8 = 1;

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ModelError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(ModelError::InvalidInput { what: "truncated model file" })?;
        let out = self
            .data
            .get(self.pos..end)
            .ok_or(ModelError::InvalidInput { what: "truncated model file" })?;
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ModelError> {
        self.take(1)?
            .first()
            .copied()
            .ok_or(ModelError::InvalidInput { what: "truncated model file" })
    }

    fn u16(&mut self) -> Result<u16, ModelError> {
        Ok(u16::from_le_bytes(array(self.take(2)?)?))
    }

    fn u32(&mut self) -> Result<u32, ModelError> {
        Ok(u32::from_le_bytes(array(self.take(4)?)?))
    }

    fn string(&mut self) -> Result<String, ModelError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ModelError::InvalidInput { what: "non-utf8 name in model file" })
    }
}

/// Checked fixed-size conversion for multi-byte reads.
fn array<const N: usize>(bytes: &[u8]) -> Result<[u8; N], ModelError> {
    <[u8; N]>::try_from(bytes)
        .map_err(|_| ModelError::InvalidInput { what: "truncated model file" })
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_tensor(out: &mut Vec<u8>, name: &str, tensor: &Tensor) {
    put_string(out, name);
    out.push(tensor.shape().rank() as u8);
    for &d in tensor.dims() {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &v in tensor.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_tensor(r: &mut Reader<'_>) -> Result<(String, Tensor), ModelError> {
    let name = r.string()?;
    let rank = r.u8()? as usize;
    if rank > 4 {
        return Err(ModelError::InvalidInput { what: "tensor rank too large" });
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(r.u32()? as usize);
    }
    let len: usize = dims.iter().product();
    let raw = r.take(len * 4)?;
    let mut data = Vec::with_capacity(len);
    for chunk in raw.chunks_exact(4) {
        let v = f32::from_le_bytes(array(chunk)?);
        if !v.is_finite() {
            return Err(ModelError::InvalidInput { what: "non-finite weight in model file" });
        }
        data.push(v);
    }
    let tensor = Tensor::from_vec(data, &dims)?;
    Ok((name, tensor))
}

/// Serializes a model (weights + auxiliary parameters) to the raw
/// format.
pub fn save_model(model: &TransformerModel) -> Vec<u8> {
    save_model_with(model, |_| true)
}

/// Serializes a model, including only the quantizable weights for
/// which `include_weight` returns `true` (auxiliary parameters are
/// always included). Used by compressed containers whose archive
/// carries the excluded weights.
pub fn save_model_with(
    model: &TransformerModel,
    mut include_weight: impl FnMut(&str) -> bool,
) -> Vec<u8> {
    let config = model.config();
    let mut out = Vec::new();
    out.extend_from_slice(&MODEL_MAGIC.to_le_bytes());
    out.push(MODEL_FORMAT_VERSION);
    out.push(u8::from(config.has_pooler));
    out.extend_from_slice(&[0u8; 2]);
    put_string(&mut out, &config.name);
    for v in [
        config.encoder_layers,
        config.hidden,
        config.intermediate,
        config.heads,
        config.vocab,
        config.max_position,
        config.type_vocab,
    ] {
        out.extend_from_slice(&(v as u32).to_le_bytes());
    }
    let weights: Vec<(&str, &Tensor)> =
        model.iter().filter(|(name, _)| include_weight(name)).collect();
    let aux: Vec<(String, &Tensor)> = aux_entries(model);
    out.extend_from_slice(&((weights.len() + aux.len()) as u32).to_le_bytes());
    for (name, tensor) in weights {
        put_tensor(&mut out, name, tensor);
    }
    for (name, tensor) in aux {
        put_tensor(&mut out, &name, tensor);
    }
    out
}

/// Enumerates the auxiliary parameters by the naming convention.
fn aux_entries(model: &TransformerModel) -> Vec<(String, &Tensor)> {
    let config = model.config();
    let mut names = vec!["embeddings.ln.gamma".to_owned(), "embeddings.ln.beta".to_owned()];
    for e in 0..config.encoder_layers {
        for ln in ["attention.ln", "output.ln"] {
            names.push(format!("encoder.{e}.{ln}.gamma"));
            names.push(format!("encoder.{e}.{ln}.beta"));
        }
    }
    for spec in model.fc_layers() {
        names.push(format!("{}.bias", spec.name));
    }
    names.into_iter().filter_map(|n| model.aux(&n).ok().map(|t| (n.clone(), t))).collect()
}

/// Deserializes a model from the raw format, requiring every
/// quantizable weight to be present.
///
/// # Errors
///
/// Returns [`ModelError::InvalidInput`] for wrong magic/version,
/// truncation, malformed or missing tensors, and shape errors when a
/// stored tensor disagrees with the configuration.
pub fn load_model(data: &[u8]) -> Result<TransformerModel, ModelError> {
    let (model, provided) = load_model_partial(data)?;
    let expected = model.fc_layers().len() + model.embedding_tables().len();
    let provided_weights =
        provided.iter().filter(|n| !(n.ends_with(".bias") || n.contains(".ln."))).count();
    if provided_weights < expected {
        return Err(ModelError::InvalidInput { what: "model file missing weight tensors" });
    }
    Ok(model)
}

/// Deserializes a possibly partial model, returning the names of the
/// tensors that were actually provided. Weights absent from the file
/// keep zeroed placeholders; callers are expected to fill them (e.g.
/// from a quantized archive).
///
/// # Errors
///
/// Same structural conditions as [`load_model`], minus the
/// completeness check.
pub fn load_model_partial(
    data: &[u8],
) -> Result<(TransformerModel, std::collections::BTreeSet<String>), ModelError> {
    gobo_fault::fail_point!(
        "model.io.load",
        ModelError::InvalidInput { what: "injected model.io.load fault" }
    );
    let mut r = Reader { data, pos: 0 };
    if r.u32()? != MODEL_MAGIC {
        return Err(ModelError::InvalidInput { what: "bad model magic" });
    }
    if r.u8()? != MODEL_FORMAT_VERSION {
        return Err(ModelError::InvalidInput { what: "unsupported model version" });
    }
    let has_pooler = r.u8()? != 0;
    let _pad = r.take(2)?;
    let name = r.string()?;
    let encoder_layers = r.u32()? as usize;
    let hidden = r.u32()? as usize;
    let intermediate = r.u32()? as usize;
    let heads = r.u32()? as usize;
    let vocab = r.u32()? as usize;
    let max_position = r.u32()? as usize;
    let type_vocab = r.u32()? as usize;
    let config = ModelConfig {
        name,
        encoder_layers,
        hidden,
        intermediate,
        heads,
        vocab,
        max_position,
        type_vocab,
        has_pooler,
    };
    config.validate()?;

    // Weights default to zeros so absent tensors are inert
    // placeholders rather than random values.
    let mut model = TransformerModel::new(
        config.clone(),
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0),
    )?;
    for spec in model.fc_layers().iter().chain(&model.embedding_tables()) {
        let dims = [spec.rows, spec.cols];
        model.set_weight(&spec.name, Tensor::zeros(&dims))?;
    }
    let count = r.u32()? as usize;
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for _ in 0..count {
        let (tname, tensor) = read_tensor(&mut r)?;
        if !seen.insert(tname.clone()) {
            return Err(ModelError::InvalidInput { what: "duplicate tensor in model file" });
        }
        if tname.ends_with(".bias") || tname.contains(".ln.") {
            model.set_aux(&tname, tensor)?;
        } else {
            model.set_weight(&tname, tensor)?;
        }
    }
    if r.pos != data.len() {
        return Err(ModelError::InvalidInput { what: "trailing bytes in model file" });
    }
    Ok((model, seen))
}

/// Writes `bytes` to `path` atomically: the data goes to a sibling
/// temporary file, is fsynced, and is renamed over the target, so a
/// crash or power cut mid-write leaves either the old file or the new
/// file — never a torn half of both. Model and container artifacts are
/// the unit that crosses machine boundaries; partial writes are exactly
/// where silent corruption enters, so every CLI write path uses this.
///
/// # Errors
///
/// Propagates I/O failures; the temporary file is removed on error.
pub fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    gobo_fault::fail_point!(
        "model.io.write",
        std::io::Error::other("injected model.io.write fault")
    );
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("atomic_write target has no file name"))?;
    let mut tmp_name = file_name.to_owned();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let write = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if let Err(e) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    // Persist the rename itself; failures here are non-fatal (the data
    // is durable, only the directory entry might replay after a crash).
    if let Some(d) = dir {
        if let Ok(dir_file) = std::fs::File::open(d) {
            let _ = dir_file.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> TransformerModel {
        let config = ModelConfig::tiny("IoTest", 2, 24, 2, 40, 12).unwrap();
        TransformerModel::new(config, &mut StdRng::seed_from_u64(3)).unwrap()
    }

    #[test]
    fn round_trip_is_exact() {
        let m = model();
        let bytes = save_model(&m);
        let restored = load_model(&bytes).unwrap();
        assert_eq!(restored, m);
    }

    #[test]
    fn round_trip_preserves_forward_pass() {
        let m = model();
        let restored = load_model(&save_model(&m)).unwrap();
        let a = m.encode(&[1, 2, 3], &[]).unwrap();
        let b = restored.encode(&[1, 2, 3], &[]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_corruption() {
        let bytes = save_model(&model());
        // Magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(load_model(&bad).is_err());
        // Version.
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(load_model(&bad).is_err());
        // Truncations at many offsets.
        for cut in [0usize, 5, 10, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(load_model(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing bytes.
        let mut bad = bytes.clone();
        bad.push(7);
        assert!(load_model(&bad).is_err());
    }

    #[test]
    fn rejects_nan_weights() {
        let m = model();
        let mut bytes = save_model(&m);
        // The final tensor's f32 data runs to the end of the file, so
        // the last 4 bytes are exactly one float — overwrite it.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&f32::NAN.to_le_bytes());
        assert!(load_model(&bytes).is_err());
    }

    #[test]
    fn modified_weights_survive_round_trip() {
        let mut m = model();
        let dims = m.weight("pooler").unwrap().dims().to_vec();
        m.set_weight("pooler", Tensor::full(&dims, 0.25)).unwrap();
        let restored = load_model(&save_model(&m)).unwrap();
        assert_eq!(restored.weight("pooler").unwrap().as_slice()[0], 0.25);
    }
}
