//! Named weight storage and the inference-only transformer.

use std::collections::BTreeMap;

use gobo_tensor::rng::{randn, xavier_normal};
use gobo_tensor::Tensor;
use rand::Rng;

use crate::config::ModelConfig;
use crate::error::ModelError;
use crate::spec::{enumerate_embedding_tables, enumerate_fc_layers, FcLayerSpec};

/// An FP32 transformer encoder with named, individually replaceable
/// weight matrices.
///
/// This is the "execution engine" side of the paper's plug-in
/// compatibility claim: quantization produces FP32 tensors of identical
/// shape, which are swapped in via [`TransformerModel::set_weight`] and
/// run through the unmodified [`forward`](crate::forward) pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerModel {
    config: ModelConfig,
    /// Quantizable weight matrices: FC layers + embedding tables.
    weights: BTreeMap<String, Tensor>,
    /// Non-quantized parameters: biases and LayerNorm gamma/beta.
    aux: BTreeMap<String, Tensor>,
}

impl TransformerModel {
    /// Builds a model with random weights: Xavier-normal FC matrices
    /// (Gaussian-shaped, like trained BERT layers — Figure 1b),
    /// `N(0, 0.02²)` embeddings, zero biases, unit LayerNorm gains.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn new(config: ModelConfig, rng: &mut impl Rng) -> Result<Self, ModelError> {
        config.validate()?;
        let mut weights = BTreeMap::new();
        for spec in enumerate_fc_layers(&config) {
            weights.insert(spec.name.clone(), xavier_normal(rng, spec.rows, spec.cols));
        }
        for spec in enumerate_embedding_tables(&config) {
            weights.insert(spec.name.clone(), randn(rng, &[spec.rows, spec.cols], 0.0, 0.02));
        }
        let mut aux = BTreeMap::new();
        let h = config.hidden;
        let mut ln = |name: String| {
            aux.insert(format!("{name}.gamma"), Tensor::ones(&[h]));
            aux.insert(format!("{name}.beta"), Tensor::zeros(&[h]));
        };
        ln("embeddings.ln".into());
        for e in 0..config.encoder_layers {
            ln(format!("encoder.{e}.attention.ln"));
            ln(format!("encoder.{e}.output.ln"));
        }
        for spec in enumerate_fc_layers(&config) {
            aux.insert(format!("{}.bias", spec.name), Tensor::zeros(&[spec.rows]));
        }
        Ok(TransformerModel { config, weights, aux })
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Borrows a quantizable weight matrix by name.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownLayer`] for unknown names.
    pub fn weight(&self, name: &str) -> Result<&Tensor, ModelError> {
        self.weights.get(name).ok_or_else(|| ModelError::UnknownLayer { name: name.into() })
    }

    /// Replaces a quantizable weight matrix, enforcing shape equality.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownLayer`] for unknown names and
    /// [`ModelError::WeightShape`] when the shapes differ.
    pub fn set_weight(&mut self, name: &str, tensor: Tensor) -> Result<(), ModelError> {
        let slot = self
            .weights
            .get_mut(name)
            .ok_or_else(|| ModelError::UnknownLayer { name: name.into() })?;
        if slot.dims() != tensor.dims() {
            return Err(ModelError::WeightShape {
                layer: name.into(),
                expected: slot.dims().to_vec(),
                got: tensor.dims().to_vec(),
            });
        }
        *slot = tensor;
        Ok(())
    }

    /// Borrows an auxiliary (bias / LayerNorm) parameter by name.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownLayer`] for unknown names.
    pub fn aux(&self, name: &str) -> Result<&Tensor, ModelError> {
        self.aux.get(name).ok_or_else(|| ModelError::UnknownLayer { name: name.into() })
    }

    /// Replaces an auxiliary parameter, enforcing shape equality.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TransformerModel::set_weight`].
    pub fn set_aux(&mut self, name: &str, tensor: Tensor) -> Result<(), ModelError> {
        let slot =
            self.aux.get_mut(name).ok_or_else(|| ModelError::UnknownLayer { name: name.into() })?;
        if slot.dims() != tensor.dims() {
            return Err(ModelError::WeightShape {
                layer: name.into(),
                expected: slot.dims().to_vec(),
                got: tensor.dims().to_vec(),
            });
        }
        *slot = tensor;
        Ok(())
    }

    /// Iterates over `(name, tensor)` for all quantizable weights in
    /// name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.weights.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Specs of the model's FC layers.
    pub fn fc_layers(&self) -> Vec<FcLayerSpec> {
        enumerate_fc_layers(&self.config)
    }

    /// Specs of the model's embedding tables.
    pub fn embedding_tables(&self) -> Vec<FcLayerSpec> {
        enumerate_embedding_tables(&self.config)
    }

    /// Total FP32 bytes held in quantizable weights.
    pub fn weight_bytes(&self) -> usize {
        self.weights.values().map(|t| t.len() * 4).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> TransformerModel {
        let config = ModelConfig::tiny("Tiny", 2, 32, 4, 50, 16).unwrap();
        TransformerModel::new(config, &mut StdRng::seed_from_u64(1)).unwrap()
    }

    #[test]
    fn construction_creates_all_layers() {
        let m = tiny();
        assert_eq!(m.fc_layers().len(), 13); // 2×6 + pooler
        assert!(m.weight("encoder.0.attention.query").is_ok());
        assert!(m.weight("encoder.1.output").is_ok());
        assert!(m.weight("pooler").is_ok());
        assert!(m.weight("embeddings.word").is_ok());
        assert!(m.weight("embeddings.token_type").is_ok());
        assert!(m.aux("encoder.0.attention.ln.gamma").is_ok());
        assert!(m.aux("pooler.bias").is_ok());
    }

    #[test]
    fn unknown_layer_is_error() {
        let m = tiny();
        assert!(matches!(m.weight("encoder.9.output"), Err(ModelError::UnknownLayer { .. })));
        assert!(m.aux("nope").is_err());
    }

    #[test]
    fn set_weight_replaces_and_checks_shape() {
        let mut m = tiny();
        let dims = m.weight("pooler").unwrap().dims().to_vec();
        let new = Tensor::full(&dims, 0.5);
        m.set_weight("pooler", new.clone()).unwrap();
        assert_eq!(m.weight("pooler").unwrap(), &new);
        assert!(matches!(
            m.set_weight("pooler", Tensor::zeros(&[2, 2])),
            Err(ModelError::WeightShape { .. })
        ));
        assert!(m.set_weight("missing", Tensor::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn shapes_match_specs() {
        let m = tiny();
        for spec in m.fc_layers().iter().chain(&m.embedding_tables()) {
            let w = m.weight(&spec.name).unwrap();
            assert_eq!(w.dims(), &[spec.rows, spec.cols], "{}", spec.name);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let config = ModelConfig::tiny("Tiny", 1, 16, 2, 20, 8).unwrap();
        let a = TransformerModel::new(config.clone(), &mut StdRng::seed_from_u64(7)).unwrap();
        let b = TransformerModel::new(config.clone(), &mut StdRng::seed_from_u64(7)).unwrap();
        let c = TransformerModel::new(config, &mut StdRng::seed_from_u64(8)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn weight_bytes_counts_fc_and_embeddings() {
        let m = tiny();
        let expected: usize =
            m.fc_layers().iter().chain(&m.embedding_tables()).map(|s| s.params() * 4).sum();
        assert_eq!(m.weight_bytes(), expected);
    }

    #[test]
    fn iter_visits_every_weight_once() {
        let m = tiny();
        let count = m.iter().count();
        assert_eq!(count, m.fc_layers().len() + m.embedding_tables().len());
    }
}
