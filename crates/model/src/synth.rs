//! Synthetic full-scale weight generation.
//!
//! We cannot ship the pre-trained HuggingFace checkpoints the paper
//! quantizes, but every size/outlier/convergence experiment depends
//! only on the *distributional shape* of trained BERT weights, which
//! Section II-A characterizes precisely: per layer, weights closely
//! follow a Gaussian whose parameters vary by layer, plus a tiny
//! fraction of large-magnitude outliers on the fringes (Figures 1b/1c),
//! with the outlier share rising in the final layers (Figure 3).
//!
//! [`synthesize_layer`] samples exactly that shape, deterministically
//! per (model, layer) so full-scale models never need to be resident in
//! memory — callers stream one layer at a time.

use gobo_tensor::rng::fill_randn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::ModelConfig;
use crate::spec::FcLayerSpec;

/// Distributional parameters for one synthetic layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerDistribution {
    /// Gaussian mean of the weight bulk.
    pub mean: f32,
    /// Gaussian standard deviation of the weight bulk.
    pub std: f32,
    /// Fraction of weights drawn from the heavy tail.
    pub tail_fraction: f64,
    /// Scale multiplier of tail samples relative to `std`.
    pub tail_scale: f32,
}

/// Deterministic per-layer distribution parameters.
///
/// Layer-to-layer variation mimics Figure 1b (means near zero, stds in
/// the 0.02–0.06 range) and Figure 3 (tail mass below ~0.4% for all but
/// the final layers, rising toward ~1% at the end of the stack).
pub fn layer_distribution(
    config: &ModelConfig,
    layer_index: usize,
    layer_count: usize,
) -> LayerDistribution {
    // Small deterministic wobble so every layer differs, seeded by name
    // hash + index.
    let mut h = 0xcbf29ce484222325u64;
    for b in config.name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    h ^= layer_index as u64;
    let wobble = ((h >> 32) as f32 / u32::MAX as f32) - 0.5; // [-0.5, 0.5)
    let depth = if layer_count <= 1 { 0.0 } else { layer_index as f32 / (layer_count - 1) as f32 };
    // Final layers carry more outliers (Figure 3's upturn at the last
    // FC layers).
    let tail_fraction = if depth > 0.97 { 0.004 } else { 0.0008 + 0.0008 * f64::from(depth) };
    LayerDistribution {
        mean: 0.001 * wobble,
        std: 0.03 + 0.015 * depth + 0.005 * wobble.abs(),
        tail_fraction,
        tail_scale: 8.0,
    }
}

/// Samples one layer's weights: `(1 - tail_fraction)` of the values
/// from `N(mean, std²)`, the rest from a widened Gaussian at
/// `tail_scale × std`, scattered uniformly through the buffer.
///
/// Deterministic given `(seed, spec.name)`.
pub fn synthesize_layer(spec: &FcLayerSpec, dist: &LayerDistribution, seed: u64) -> Vec<f32> {
    let mut rng = rng_for(seed, &spec.name);
    let n = spec.params();
    let mut out = vec![0.0f32; n];
    fill_randn(&mut rng, &mut out, dist.mean, dist.std);
    let tail_count = (n as f64 * dist.tail_fraction).round() as usize;
    for _ in 0..tail_count {
        let i = rng.gen_range(0..n);
        let mut t = [0.0f32; 1];
        fill_randn(&mut rng, &mut t, dist.mean, dist.std * dist.tail_scale);
        // Push the tail sample outside the bulk so it reads as a fringe
        // value (Figure 1c), regardless of the Gaussian draw.
        let sign = if t[0] >= dist.mean { 1.0 } else { -1.0 };
        out[i] = t[0] + sign * 4.0 * dist.std;
    }
    out
}

/// Streams every FC layer of a full-scale model through `f`, one layer
/// at a time (BERT-Large weights total 1.12 GiB — materializing them
/// all at once is unnecessary for any experiment).
///
/// `f` receives the layer spec, its distribution, and the weights.
pub fn for_each_fc_layer<F>(config: &ModelConfig, seed: u64, mut f: F)
where
    F: FnMut(&FcLayerSpec, &LayerDistribution, Vec<f32>),
{
    let specs = crate::spec::enumerate_fc_layers(config);
    let count = specs.len();
    for (i, spec) in specs.iter().enumerate() {
        let dist = layer_distribution(config, i, count);
        let weights = synthesize_layer(spec, &dist, seed);
        f(spec, &dist, weights);
    }
}

/// Synthesizes one embedding table (same tail structure; embeddings
/// show slightly heavier tails in practice, hence the bump).
pub fn synthesize_embedding(spec: &FcLayerSpec, seed: u64) -> Vec<f32> {
    let dist = LayerDistribution { mean: 0.0, std: 0.035, tail_fraction: 0.0015, tail_scale: 8.0 };
    synthesize_layer(spec, &dist, seed)
}

fn rng_for(seed: u64, name: &str) -> StdRng {
    let mut h = seed ^ 0x9E3779B97F4A7C15;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
        h = h.rotate_left(17);
    }
    StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::enumerate_fc_layers;
    use gobo_stats::Gaussian;

    fn spec(rows: usize, cols: usize) -> FcLayerSpec {
        FcLayerSpec {
            name: "encoder.0.attention.query".into(),
            kind: crate::spec::LayerKind::Query,
            encoder: Some(0),
            rows,
            cols,
        }
    }

    #[test]
    fn weights_follow_requested_gaussian() {
        let dist = LayerDistribution { mean: 0.01, std: 0.04, tail_fraction: 0.0, tail_scale: 8.0 };
        let w = synthesize_layer(&spec(200, 200), &dist, 1);
        let g = Gaussian::fit(&w).unwrap();
        assert!((g.mean() - 0.01).abs() < 0.002, "mean {}", g.mean());
        assert!((g.std() - 0.04).abs() < 0.002, "std {}", g.std());
    }

    #[test]
    fn tail_fraction_materializes_as_outliers() {
        let dist =
            LayerDistribution { mean: 0.0, std: 0.03, tail_fraction: 0.002, tail_scale: 8.0 };
        let w = synthesize_layer(&spec(300, 300), &dist, 2);
        // Count weights beyond 4σ of the bulk — tails should dominate
        // that region.
        let far = w.iter().filter(|&&v| v.abs() > 0.12).count();
        let frac = far as f64 / w.len() as f64;
        assert!(frac > 0.0005 && frac < 0.01, "fringe fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed_and_name() {
        let dist = layer_distribution(&ModelConfig::bert_base(), 0, 73);
        let a = synthesize_layer(&spec(50, 50), &dist, 42);
        let b = synthesize_layer(&spec(50, 50), &dist, 42);
        assert_eq!(a, b);
        let c = synthesize_layer(&spec(50, 50), &dist, 43);
        assert_ne!(a, c);
        let mut other = spec(50, 50);
        other.name = "encoder.1.attention.query".into();
        let d = synthesize_layer(&other, &dist, 42);
        assert_ne!(a, d);
    }

    #[test]
    fn distribution_varies_per_layer_and_rises_at_end() {
        let config = ModelConfig::bert_base();
        let first = layer_distribution(&config, 0, 73);
        let mid = layer_distribution(&config, 36, 73);
        let last = layer_distribution(&config, 72, 73);
        assert!(first.std != mid.std || first.mean != mid.mean);
        assert!(last.tail_fraction > first.tail_fraction * 2.0);
        // All but the last layers stay below ~0.4% tail mass (Figure 3).
        for i in 0..70 {
            assert!(layer_distribution(&config, i, 73).tail_fraction < 0.004);
        }
    }

    #[test]
    fn streaming_visits_every_layer_in_order() {
        let config = ModelConfig::tiny("Tiny", 2, 16, 2, 30, 8).unwrap();
        let mut names = Vec::new();
        for_each_fc_layer(&config, 7, |spec, _, w| {
            assert_eq!(w.len(), spec.params());
            names.push(spec.name.clone());
        });
        let expected: Vec<String> =
            enumerate_fc_layers(&config).iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn bulk_is_gaussian_tails_break_normality() {
        // The generator's contract with Section II-A: without tails the
        // weights pass a normality check; with tails they fail it the
        // way real BERT layers do (heavy kurtosis from outliers).
        let clean = LayerDistribution { mean: 0.0, std: 0.03, tail_fraction: 0.0, tail_scale: 8.0 };
        let tailed =
            LayerDistribution { mean: 0.0, std: 0.03, tail_fraction: 0.002, tail_scale: 8.0 };
        let w_clean = synthesize_layer(&spec(200, 200), &clean, 11);
        let w_tailed = synthesize_layer(&spec(200, 200), &tailed, 11);
        let jb_clean = gobo_stats::jarque_bera_per_sample(&w_clean).unwrap();
        let jb_tailed = gobo_stats::jarque_bera_per_sample(&w_tailed).unwrap();
        assert!(jb_clean < 0.01, "clean JB/n {jb_clean}");
        assert!(jb_tailed > jb_clean * 10.0, "tails must dominate: {jb_tailed} vs {jb_clean}");
    }

    #[test]
    fn embedding_synthesis_matches_spec_size() {
        let tables = crate::spec::enumerate_embedding_tables(
            &ModelConfig::tiny("Tiny", 1, 16, 2, 100, 8).unwrap(),
        );
        let w = synthesize_embedding(&tables[0], 3);
        assert_eq!(w.len(), 100 * 16);
    }
}
