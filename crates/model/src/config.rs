//! Model geometry for the BERT family (Table I of the paper).

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// Complete architectural description of a BERT-style encoder.
///
/// The five published presets ([`ModelConfig::bert_base`] and friends)
/// reproduce Table I exactly; [`ModelConfig::tiny`] builds small
/// trainable variants with the same topology for the accuracy
/// experiments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable model name (e.g. `"BERT-Base"`).
    pub name: String,
    /// Number of stacked encoder ("BERT") layers.
    pub encoder_layers: usize,
    /// Hidden-state width.
    pub hidden: usize,
    /// Intermediate FC width (4× hidden in the published models).
    pub intermediate: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// WordPiece/BPE vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length (position-embedding rows).
    pub max_position: usize,
    /// Token-type vocabulary (2 for BERT's sentence-pair encoding; 0
    /// when the model has no segment embeddings, e.g. DistilBERT).
    pub type_vocab: usize,
    /// Whether the model ends in a pooler FC (DistilBERT does not).
    pub has_pooler: bool,
}

impl ModelConfig {
    /// BERT-Base: 12 layers, hidden 768, intermediate 3072 (Table I).
    pub fn bert_base() -> Self {
        ModelConfig {
            name: "BERT-Base".into(),
            encoder_layers: 12,
            hidden: 768,
            intermediate: 3072,
            heads: 12,
            vocab: 30_522,
            max_position: 512,
            type_vocab: 2,
            has_pooler: true,
        }
    }

    /// BERT-Large: 24 layers, hidden 1024, intermediate 4096 (Table I).
    pub fn bert_large() -> Self {
        ModelConfig {
            name: "BERT-Large".into(),
            encoder_layers: 24,
            hidden: 1024,
            intermediate: 4096,
            heads: 16,
            vocab: 30_522,
            max_position: 512,
            type_vocab: 2,
            has_pooler: true,
        }
    }

    /// DistilBERT: 6 layers distilled from BERT-Base, no pooler and no
    /// token-type embeddings.
    pub fn distilbert() -> Self {
        ModelConfig {
            name: "DistilBERT".into(),
            encoder_layers: 6,
            hidden: 768,
            intermediate: 3072,
            heads: 12,
            vocab: 30_522,
            max_position: 512,
            type_vocab: 0,
            has_pooler: false,
        }
    }

    /// RoBERTa (base): BERT-Base geometry with a 50k BPE vocabulary.
    pub fn roberta_base() -> Self {
        ModelConfig {
            name: "RoBERTa".into(),
            encoder_layers: 12,
            hidden: 768,
            intermediate: 3072,
            heads: 12,
            vocab: 50_265,
            max_position: 514,
            type_vocab: 1,
            has_pooler: true,
        }
    }

    /// RoBERTa-Large: BERT-Large geometry with a 50k BPE vocabulary.
    pub fn roberta_large() -> Self {
        ModelConfig {
            name: "RoBERTa-Large".into(),
            encoder_layers: 24,
            hidden: 1024,
            intermediate: 4096,
            heads: 16,
            vocab: 50_265,
            max_position: 514,
            type_vocab: 1,
            has_pooler: true,
        }
    }

    /// A small trainable variant with the same topology. Hidden width
    /// must divide evenly among heads.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] when any extent is zero or
    /// `hidden % heads != 0`.
    pub fn tiny(
        name: &str,
        encoder_layers: usize,
        hidden: usize,
        heads: usize,
        vocab: usize,
        max_position: usize,
    ) -> Result<Self, ModelError> {
        let config = ModelConfig {
            name: name.into(),
            encoder_layers,
            hidden,
            intermediate: hidden * 4,
            heads,
            vocab,
            max_position,
            type_vocab: 2,
            has_pooler: true,
        };
        config.validate()?;
        Ok(config)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.encoder_layers == 0 {
            return Err(ModelError::InvalidConfig { name: "encoder_layers" });
        }
        if self.hidden == 0 {
            return Err(ModelError::InvalidConfig { name: "hidden" });
        }
        if self.intermediate == 0 {
            return Err(ModelError::InvalidConfig { name: "intermediate" });
        }
        if self.heads == 0 || !self.hidden.is_multiple_of(self.heads) {
            return Err(ModelError::InvalidConfig { name: "heads" });
        }
        if self.vocab == 0 {
            return Err(ModelError::InvalidConfig { name: "vocab" });
        }
        if self.max_position == 0 {
            return Err(ModelError::InvalidConfig { name: "max_position" });
        }
        Ok(())
    }

    /// Per-head dimension (`hidden / heads`).
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Number of FC layers: 6 per encoder (4 attention + intermediate +
    /// output) plus the pooler — 73 for BERT-Base, 145 for BERT-Large,
    /// matching Section II.
    pub fn fc_layer_count(&self) -> usize {
        self.encoder_layers * 6 + usize::from(self.has_pooler)
    }

    /// Total FC *weight-matrix* parameters (the population GOBO
    /// quantizes; biases and LayerNorm excluded, matching Table II's
    /// "Weights" row).
    pub fn fc_weight_params(&self) -> usize {
        let per_layer = 4 * self.hidden * self.hidden + 2 * self.hidden * self.intermediate;
        let pooler = if self.has_pooler { self.hidden * self.hidden } else { 0 };
        self.encoder_layers * per_layer + pooler
    }

    /// Word-embedding parameters (the "Embedding Tables" row of
    /// Table II counts the word table).
    pub fn word_embedding_params(&self) -> usize {
        self.vocab * self.hidden
    }

    /// All embedding parameters (word + position + token-type).
    pub fn embedding_params(&self) -> usize {
        (self.vocab + self.max_position + self.type_vocab) * self.hidden
    }
}

impl Default for ModelConfig {
    /// Defaults to BERT-Base, the paper's primary subject.
    fn default() -> Self {
        Self::bert_base()
    }
}

impl std::fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} layers, hidden {}, intermediate {})",
            self.name, self.encoder_layers, self.hidden, self.intermediate
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometry() {
        let base = ModelConfig::bert_base();
        assert_eq!(base.encoder_layers, 12);
        assert_eq!(base.hidden, 768);
        assert_eq!(base.intermediate, 3072);
        let large = ModelConfig::bert_large();
        assert_eq!(large.encoder_layers, 24);
        assert_eq!(large.hidden, 1024);
        assert_eq!(large.intermediate, 4096);
    }

    #[test]
    fn fc_layer_counts_match_section2() {
        assert_eq!(ModelConfig::bert_base().fc_layer_count(), 73);
        assert_eq!(ModelConfig::bert_large().fc_layer_count(), 145);
        assert_eq!(ModelConfig::distilbert().fc_layer_count(), 36);
    }

    #[test]
    fn weight_params_match_table2() {
        // BERT-Base weights: 326.26 MiB of FP32.
        let bytes = ModelConfig::bert_base().fc_weight_params() * 4;
        let mib = bytes as f64 / (1024.0 * 1024.0);
        assert!((mib - 326.25).abs() < 0.5, "BERT-Base weights {mib} MiB");
        // BERT-Large: ~1.12 GiB.
        let gib = (ModelConfig::bert_large().fc_weight_params() * 4) as f64 / (1024.0f64.powi(3));
        assert!((gib - 1.12).abs() < 0.02, "BERT-Large weights {gib} GiB");
    }

    #[test]
    fn word_embeddings_match_table7() {
        let mib = |c: &ModelConfig| (c.word_embedding_params() * 4) as f64 / (1024.0 * 1024.0);
        assert!((mib(&ModelConfig::bert_base()) - 89.42).abs() < 0.01);
        assert!((mib(&ModelConfig::bert_large()) - 119.22).abs() < 0.01);
        assert!((mib(&ModelConfig::distilbert()) - 89.42).abs() < 0.01);
        assert!((mib(&ModelConfig::roberta_base()) - 147.26).abs() < 0.01);
        assert!((mib(&ModelConfig::roberta_large()) - 196.34).abs() < 0.01);
    }

    #[test]
    fn tiny_validates() {
        let t = ModelConfig::tiny("Tiny", 2, 64, 4, 100, 32).unwrap();
        assert_eq!(t.head_dim(), 16);
        assert_eq!(t.intermediate, 256);
        assert!(ModelConfig::tiny("Bad", 2, 65, 4, 100, 32).is_err());
        assert!(ModelConfig::tiny("Bad", 0, 64, 4, 100, 32).is_err());
        assert!(ModelConfig::tiny("Bad", 2, 64, 4, 0, 32).is_err());
    }

    #[test]
    fn validate_catches_each_field() {
        let mut c = ModelConfig::bert_base();
        c.heads = 7; // 768 % 7 != 0
        assert!(c.validate().is_err());
        let mut c = ModelConfig::bert_base();
        c.intermediate = 0;
        assert!(c.validate().is_err());
        let mut c = ModelConfig::bert_base();
        c.max_position = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn display_names() {
        assert!(ModelConfig::bert_base().to_string().contains("BERT-Base"));
        assert_eq!(ModelConfig::default(), ModelConfig::bert_base());
    }
}
