//! The FP32 encoder forward pass (Figure 1a).
//!
//! Each encoder layer runs multi-head self-attention (query/key/value
//! projections, scaled dot-product, output projection, residual +
//! LayerNorm), then the intermediate GELU FC and output FC with another
//! residual + LayerNorm. A final pooler (FC + tanh over the first
//! token) produces the sentence representation used by classification
//! heads.

use gobo_tensor::embed::gather_rows;
use gobo_tensor::linalg::{merge_heads, split_heads, transpose_batched};
use gobo_tensor::norm::LAYER_NORM_EPS;
use gobo_tensor::Tensor;

use crate::error::ModelError;
use crate::weights::TransformerModel;

/// Output of one encoder pass.
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderOutput {
    /// Final hidden states, `(seq_len, hidden)`.
    pub hidden: Tensor,
    /// Pooled first-token representation (`tanh(W·h₀+b)`), when the
    /// model has a pooler.
    pub pooled: Option<Tensor>,
}

impl TransformerModel {
    /// Runs the full encoder over a token sequence.
    ///
    /// `type_ids` may be empty (treated as all zeros) or must match
    /// `ids` in length. Models without token-type embeddings ignore it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] for empty/overlong inputs or
    /// out-of-vocabulary ids, and propagates tensor failures.
    pub fn encode(&self, ids: &[usize], type_ids: &[usize]) -> Result<EncoderOutput, ModelError> {
        let config = self.config();
        self.validate_input(ids, type_ids)?;

        // --- Embeddings ---------------------------------------------------
        let word = gather_rows(self.weight("embeddings.word")?, ids)?;
        let positions: Vec<usize> = (0..ids.len()).collect();
        let pos = gather_rows(self.weight("embeddings.position")?, &positions)?;
        let mut x = word.add(&pos)?;
        if config.type_vocab > 0 {
            let zeros;
            let types: &[usize] = if type_ids.is_empty() {
                zeros = vec![0usize; ids.len()];
                &zeros
            } else {
                type_ids
            };
            let tt = gather_rows(self.weight("embeddings.token_type")?, types)?;
            x = x.add(&tt)?;
        }
        x = x.layer_norm(
            self.aux("embeddings.ln.gamma")?,
            self.aux("embeddings.ln.beta")?,
            LAYER_NORM_EPS,
        )?;

        // --- Encoder stack -------------------------------------------------
        for e in 0..config.encoder_layers {
            x = self.encoder_layer(e, &x)?;
        }

        // --- Pooler ---------------------------------------------------------
        let pooled = if config.has_pooler {
            let first = x.row(0)?.reshape(&[1, config.hidden])?;
            let z = first.matmul_nt(self.weight("pooler")?)?.add_bias(self.aux("pooler.bias")?)?;
            Some(z.tanh().reshape(&[config.hidden])?)
        } else {
            None
        };

        Ok(EncoderOutput { hidden: x, pooled })
    }

    /// Validates one token sequence against the model configuration.
    ///
    /// `type_ids` may be empty (treated as all zeros) or must match
    /// `ids` in length; type-id values are only range-checked when the
    /// model actually has token-type embeddings. This is exactly the
    /// admission check [`TransformerModel::encode`] performs, exposed so
    /// batched callers can vet every sequence before any compute runs.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] for empty/overlong inputs,
    /// out-of-vocabulary ids, or mismatched/out-of-range type ids.
    pub fn validate_input(&self, ids: &[usize], type_ids: &[usize]) -> Result<(), ModelError> {
        let config = self.config();
        if ids.is_empty() {
            return Err(ModelError::InvalidInput { what: "empty token sequence" });
        }
        if ids.len() > config.max_position {
            return Err(ModelError::InvalidInput { what: "sequence longer than max_position" });
        }
        if !type_ids.is_empty() && type_ids.len() != ids.len() {
            return Err(ModelError::InvalidInput { what: "type_ids length mismatch" });
        }
        if ids.iter().any(|&id| id >= config.vocab) {
            return Err(ModelError::InvalidInput { what: "token id outside vocabulary" });
        }
        if config.type_vocab > 0 && type_ids.iter().any(|&t| t >= config.type_vocab) {
            return Err(ModelError::InvalidInput { what: "token type id outside vocabulary" });
        }
        Ok(())
    }

    /// One encoder layer: self-attention block then feed-forward block.
    fn encoder_layer(&self, e: usize, x: &Tensor) -> Result<Tensor, ModelError> {
        let config = self.config();
        let prefix = format!("encoder.{e}");
        let fc = |name: &str, input: &Tensor| -> Result<Tensor, ModelError> {
            let full = format!("{prefix}.{name}");
            Ok(input
                .matmul_nt(self.weight(&full)?)?
                .add_bias(self.aux(&format!("{full}.bias"))?)?)
        };

        // Self-attention.
        let q = fc("attention.query", x)?;
        let k = fc("attention.key", x)?;
        let v = fc("attention.value", x)?;
        let heads = config.heads;
        let qh = split_heads(&q, heads)?;
        let kh = split_heads(&k, heads)?;
        let vh = split_heads(&v, heads)?;
        let scores = qh
            .batch_matmul(&transpose_batched(&kh)?)?
            .scale(1.0 / (config.head_dim() as f32).sqrt());
        let probs = scores.softmax()?;
        let ctx = merge_heads(&probs.batch_matmul(&vh)?)?;
        let attn = fc("attention.output", &ctx)?;
        let x = x.add(&attn)?.layer_norm(
            self.aux(&format!("{prefix}.attention.ln.gamma"))?,
            self.aux(&format!("{prefix}.attention.ln.beta"))?,
            LAYER_NORM_EPS,
        )?;

        // Feed-forward.
        let inter = fc("intermediate", &x)?.gelu();
        let out = fc("output", &inter)?;
        let x = x.add(&out)?.layer_norm(
            self.aux(&format!("{prefix}.output.ln.gamma"))?,
            self.aux(&format!("{prefix}.output.ln.beta"))?,
            LAYER_NORM_EPS,
        )?;
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> TransformerModel {
        let config = ModelConfig::tiny("Tiny", 2, 32, 4, 64, 16).unwrap();
        TransformerModel::new(config, &mut StdRng::seed_from_u64(3)).unwrap()
    }

    #[test]
    fn encode_shapes() {
        let m = tiny();
        let out = m.encode(&[1, 2, 3, 4, 5], &[]).unwrap();
        assert_eq!(out.hidden.dims(), &[5, 32]);
        assert_eq!(out.pooled.as_ref().unwrap().dims(), &[32]);
        assert!(out.hidden.all_finite());
        assert!(out.pooled.unwrap().all_finite());
    }

    #[test]
    fn pooled_values_in_tanh_range() {
        let m = tiny();
        let out = m.encode(&[9, 8, 7], &[]).unwrap();
        assert!(out.pooled.unwrap().as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn encode_is_deterministic() {
        let m = tiny();
        let a = m.encode(&[4, 4, 4], &[0, 0, 1]).unwrap();
        let b = m.encode(&[4, 4, 4], &[0, 0, 1]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn token_types_change_output() {
        let m = tiny();
        let a = m.encode(&[4, 5, 6], &[0, 0, 0]).unwrap();
        let b = m.encode(&[4, 5, 6], &[1, 1, 1]).unwrap();
        assert_ne!(a.hidden, b.hidden);
    }

    #[test]
    fn position_matters() {
        let m = tiny();
        let a = m.encode(&[10, 11], &[]).unwrap();
        let b = m.encode(&[11, 10], &[]).unwrap();
        assert_ne!(a.hidden, b.hidden);
    }

    #[test]
    fn input_validation() {
        let m = tiny();
        assert!(m.encode(&[], &[]).is_err());
        assert!(m.encode(&[999], &[]).is_err()); // out of vocab
        assert!(m.encode(&[1, 2], &[0]).is_err()); // length mismatch
        assert!(m.encode(&[1, 2], &[0, 9]).is_err()); // bad type id
        let too_long: Vec<usize> = vec![1; 17]; // max_position = 16
        assert!(m.encode(&too_long, &[]).is_err());
    }

    #[test]
    fn distilbert_like_has_no_pooled_output() {
        let mut config = ModelConfig::tiny("TinyD", 1, 16, 2, 30, 8).unwrap();
        config.has_pooler = false;
        config.type_vocab = 0;
        let m = TransformerModel::new(config, &mut StdRng::seed_from_u64(5)).unwrap();
        let out = m.encode(&[1, 2, 3], &[]).unwrap();
        assert!(out.pooled.is_none());
        assert_eq!(out.hidden.dims(), &[3, 16]);
    }

    #[test]
    fn weight_perturbation_changes_output() {
        // Plug-in compatibility sanity: replacing a weight changes the
        // forward result (the quantization pipeline relies on set_weight
        // actually being wired into encode()).
        let mut m = tiny();
        let before = m.encode(&[1, 2, 3], &[]).unwrap();
        let w = m.weight("encoder.0.intermediate").unwrap().scale(1.5);
        m.set_weight("encoder.0.intermediate", w).unwrap();
        let after = m.encode(&[1, 2, 3], &[]).unwrap();
        assert_ne!(before.hidden, after.hidden);
    }
}
