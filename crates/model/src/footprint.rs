//! Memory-footprint accounting (Tables I, II and VII).
//!
//! The paper reports sizes in "MB" that are binary mebibytes of FP32
//! parameters: BERT-Base weights 326.26 MB, embedding tables 89.42 MB,
//! and per-word activations of 3 KB (one 768-wide FP32 vector ≈ 3 KiB).
//! These functions reproduce those rows exactly from the geometry.

use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;

/// Bytes per mebibyte (the paper's "MB").
pub const MIB: f64 = 1024.0 * 1024.0;

/// One model's memory footprint, mirroring Table II's rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Footprint {
    /// Model name.
    pub model: String,
    /// Word-embedding-table bytes (Table II "Embedding Tables").
    pub embedding_bytes: usize,
    /// FC weight-matrix bytes (Table II "Weights").
    pub weight_bytes: usize,
    /// Bytes of model input per word (hidden-state vector).
    pub input_per_word_bytes: usize,
    /// Bytes of the largest layer's activations per word (the
    /// intermediate FC output).
    pub largest_acts_per_word_bytes: usize,
    /// Sequence length used for the activation row.
    pub sequence_length: usize,
    /// Total activation bytes for one sequence.
    pub activation_bytes: usize,
}

impl Footprint {
    /// Computes the footprint of a model at a given sequence length
    /// (the paper uses 128).
    pub fn of(config: &ModelConfig, sequence_length: usize) -> Self {
        let input_per_word = config.hidden * 4;
        let largest_acts_per_word = config.intermediate * 4;
        // Per word the live working set is the hidden state plus the
        // widest intermediate activation.
        let activation = sequence_length * (config.hidden + config.intermediate) * 4;
        Footprint {
            model: config.name.clone(),
            embedding_bytes: config.word_embedding_params() * 4,
            weight_bytes: config.fc_weight_params() * 4,
            input_per_word_bytes: input_per_word,
            largest_acts_per_word_bytes: largest_acts_per_word,
            sequence_length,
            activation_bytes: activation,
        }
    }

    /// Embedding bytes in the paper's MB (MiB).
    pub fn embedding_mib(&self) -> f64 {
        self.embedding_bytes as f64 / MIB
    }

    /// Weight bytes in the paper's MB (MiB).
    pub fn weight_mib(&self) -> f64 {
        self.weight_bytes as f64 / MIB
    }

    /// Total parameter bytes (weights + embeddings).
    pub fn total_param_bytes(&self) -> usize {
        self.embedding_bytes + self.weight_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_bert_base() {
        let f = Footprint::of(&ModelConfig::bert_base(), 128);
        assert!((f.embedding_mib() - 89.42).abs() < 0.01, "{}", f.embedding_mib());
        assert!((f.weight_mib() - 326.25).abs() < 0.5, "{}", f.weight_mib());
        // "Model Input per Word: 3 KB" — 768 floats = 3 KiB.
        assert_eq!(f.input_per_word_bytes, 3 * 1024);
        // "Largest layer Acts per Word: 12 KB" — 3072 floats = 12 KiB.
        assert_eq!(f.largest_acts_per_word_bytes, 12 * 1024);
        // "Activations ≈ 1.5 MB" at sequence length 128.
        assert!((f.activation_bytes as f64 / MIB - 1.875).abs() < 0.5);
    }

    #[test]
    fn table2_bert_large() {
        let f = Footprint::of(&ModelConfig::bert_large(), 128);
        assert!((f.embedding_mib() - 119.22).abs() < 0.01);
        assert!((f.weight_bytes as f64 / MIB / 1024.0 - 1.12).abs() < 0.02, "GiB");
        assert_eq!(f.input_per_word_bytes, 4 * 1024);
        assert_eq!(f.largest_acts_per_word_bytes, 16 * 1024);
    }

    #[test]
    fn distilbert_is_half_of_bert_base() {
        let base = Footprint::of(&ModelConfig::bert_base(), 128);
        let distil = Footprint::of(&ModelConfig::distilbert(), 128);
        let ratio = base.weight_bytes as f64 / distil.weight_bytes as f64;
        assert!(ratio > 1.9 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn total_includes_both_components() {
        let f = Footprint::of(&ModelConfig::roberta_base(), 128);
        assert_eq!(f.total_param_bytes(), f.embedding_bytes + f.weight_bytes);
    }
}
