//! The BERT family of transformer encoders (Section II of the paper).
//!
//! This crate supplies everything the quantization experiments need
//! from the model side:
//!
//! * [`config`] — the exact layer geometry of BERT-Base, BERT-Large,
//!   DistilBERT, RoBERTa and RoBERTa-Large (Table I), plus tiny
//!   trainable variants used for the accuracy experiments;
//! * [`spec`] — a registry naming every FC layer and embedding table
//!   (the 73 / 145 FC layers of Figure 3) with its dimensions;
//! * [`weights`] — named weight storage and the inference-only
//!   [`weights::TransformerModel`];
//! * [`forward`] — the FP32 encoder forward pass (attention,
//!   intermediate, output, pooler: Figure 1a);
//! * [`batch`] / [`compute`] — the ragged batched forward pass and the
//!   pluggable weight-product backend that lets a serving engine run
//!   the FC layers directly on compressed weights;
//! * [`synth`] — synthetic full-scale weight generation that matches
//!   the paper's observed per-layer Gaussian-plus-outliers shape
//!   (Figures 1b/1c), substituting for the pre-trained checkpoints we
//!   cannot ship;
//! * [`footprint`] — the memory accounting behind Tables I, II and VII.
//!
//! # Example
//!
//! ```
//! use gobo_model::config::ModelConfig;
//!
//! let base = ModelConfig::bert_base();
//! assert_eq!(base.encoder_layers, 12);
//! assert_eq!(base.fc_layer_count(), 73); // 12×6 + pooler
//! ```

#![deny(missing_docs)]

pub mod batch;
pub mod compute;
pub mod config;
pub mod error;
pub mod footprint;
pub mod forward;
pub mod io;
pub mod spec;
pub mod synth;
pub mod weights;

pub use batch::EncodeInput;
pub use compute::{DenseCompute, WeightCompute};
pub use config::ModelConfig;
pub use error::ModelError;
pub use spec::{FcLayerSpec, LayerKind};
pub use weights::TransformerModel;
