//! Error type for model construction and inference.

use std::fmt;

use gobo_tensor::TensorError;

/// Error returned by fallible model operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A configuration field was zero or inconsistent.
    InvalidConfig {
        /// Name of the offending field.
        name: &'static str,
    },
    /// A named layer was requested that the model does not contain.
    UnknownLayer {
        /// The requested layer name.
        name: String,
    },
    /// A weight tensor's shape disagrees with the configuration.
    WeightShape {
        /// The layer whose weights were malformed.
        layer: String,
        /// Expected dimensions.
        expected: Vec<usize>,
        /// Supplied dimensions.
        got: Vec<usize>,
    },
    /// The input token sequence was invalid (empty, too long, or with
    /// ids outside the vocabulary).
    InvalidInput {
        /// Description of the problem.
        what: &'static str,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidConfig { name } => {
                write!(f, "invalid model configuration: field `{name}`")
            }
            ModelError::UnknownLayer { name } => write!(f, "unknown layer `{name}`"),
            ModelError::WeightShape { layer, expected, got } => {
                write!(f, "layer `{layer}`: expected shape {expected:?}, got {got:?}")
            }
            ModelError::InvalidInput { what } => write!(f, "invalid input: {what}"),
            ModelError::Tensor(e) => write!(f, "tensor failure: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ModelError {
    fn from(e: TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::UnknownLayer { name: "encoder.99.pooler".into() };
        assert!(e.to_string().contains("encoder.99.pooler"));
        let e = ModelError::WeightShape {
            layer: "pooler".into(),
            expected: vec![768, 768],
            got: vec![768, 64],
        };
        assert!(e.to_string().contains("[768, 64]"));
    }

    #[test]
    fn tensor_errors_convert() {
        use std::error::Error;
        let e: ModelError = TensorError::EmptyDimension { op: "softmax" }.into();
        assert!(e.source().is_some());
    }
}
