//! Property-based tests for the model substrate.

use gobo_model::config::ModelConfig;
use gobo_model::spec::{enumerate_embedding_tables, enumerate_fc_layers};
use gobo_model::TransformerModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_config() -> impl Strategy<Value = ModelConfig> {
    (1usize..3, 1usize..3, 2usize..5, 10usize..40, 4usize..10).prop_filter_map(
        "divisible heads",
        |(layers, heads_pow, width_mul, vocab, max_pos)| {
            let heads = 1usize << heads_pow;
            let hidden = heads * 4 * width_mul;
            ModelConfig::tiny("Prop", layers, hidden, heads, vocab, max_pos).ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fc_count_formula_holds(config in tiny_config()) {
        let layers = enumerate_fc_layers(&config);
        prop_assert_eq!(layers.len(), config.encoder_layers * 6 + 1);
        let total: usize = layers.iter().map(|l| l.params()).sum();
        prop_assert_eq!(total, config.fc_weight_params());
    }

    #[test]
    fn embedding_specs_cover_embedding_params(config in tiny_config()) {
        let total: usize = enumerate_embedding_tables(&config).iter().map(|l| l.params()).sum();
        prop_assert_eq!(total, config.embedding_params());
    }

    #[test]
    fn encode_always_finite(config in tiny_config(), seed in 0u64..1000) {
        let m = TransformerModel::new(config.clone(), &mut StdRng::seed_from_u64(seed)).unwrap();
        let seq = config.max_position.min(5);
        let ids: Vec<usize> = (0..seq).map(|i| (i * 7 + seed as usize) % config.vocab).collect();
        let out = m.encode(&ids, &[]).unwrap();
        prop_assert!(out.hidden.all_finite());
        prop_assert_eq!(out.hidden.dims(), &[seq, config.hidden]);
        if let Some(p) = out.pooled {
            prop_assert!(p.all_finite());
            prop_assert!(p.as_slice().iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn hidden_rows_are_layer_normalized(config in tiny_config(), seed in 0u64..100) {
        let m = TransformerModel::new(config.clone(), &mut StdRng::seed_from_u64(seed)).unwrap();
        let ids: Vec<usize> = (0..3.min(config.max_position)).map(|i| i % config.vocab).collect();
        let out = m.encode(&ids, &[]).unwrap();
        // Final activation comes out of a LayerNorm with unit gain: each
        // row must have ~zero mean and ~unit variance.
        for mo in gobo_tensor::norm::row_moments(&out.hidden).unwrap() {
            prop_assert!(mo.mean.abs() < 1e-3);
            prop_assert!((mo.var - 1.0).abs() < 1e-2);
        }
    }
}
