//! The canonical deadlock, on real threads: thread 1 locks A then B,
//! thread 2 locks B then A, a barrier guarantees the interleaving.
//! The sanitizer must name both sites *while the threads are wedged*
//! — edges are recorded before an acquisition blocks — and the
//! watchdog must flag the stall within its window.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use gobo_sanitize::{
    enable, reports, set_watchdog, LockEdge, Mode, ReportKind, SanMutex, SanRwLock,
};

fn wait_for_report(deadline: Duration, pred: impl Fn(&gobo_sanitize::Report) -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if reports().iter().any(&pred) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn abba_deadlock_is_reported_with_both_sites() {
    enable(Mode::Record);
    set_watchdog(Duration::from_millis(200));

    let a = Arc::new(SanMutex::new("abba.test.lock_a", 100, ()));
    let b = Arc::new(SanMutex::new("abba.test.lock_b", 101, ()));
    let barrier = Arc::new(Barrier::new(2));

    // Thread 1: A, then B. Thread 2: B, then A. The barrier sits
    // between the first and second acquisition on both sides, so the
    // deadlock is guaranteed, not probabilistic.
    let (a1, b1, bar1) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
    std::thread::Builder::new()
        .name("abba-t1".into())
        .spawn(move || {
            let _ga = a1.lock();
            bar1.wait();
            let _gb = b1.lock(); // blocks forever
        })
        .expect("spawn t1");
    let (a2, b2, bar2) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
    std::thread::Builder::new()
        .name("abba-t2".into())
        .spawn(move || {
            let _gb = b2.lock();
            bar2.wait();
            let _ga = a2.lock(); // blocks forever
        })
        .expect("spawn t2");

    // The cycle report fires at the second thread's acquisition
    // *attempt*, well before any watchdog — both threads stay wedged.
    assert!(
        wait_for_report(Duration::from_secs(10), |r| {
            r.kind == ReportKind::Cycle
                && r.message.contains("abba.test.lock_a")
                && r.message.contains("abba.test.lock_b")
        }),
        "no cycle report within 10s; reports: {:?}",
        reports()
    );

    // Two-site precision: the report names the acquisition site on
    // each side of the conflicting order (this file, twice).
    let cycle = reports()
        .into_iter()
        .find(|r| r.kind == ReportKind::Cycle && r.message.contains("abba.test.lock_a"))
        .expect("cycle report");
    let site_mentions = cycle.message.matches("tests/abba.rs").count();
    assert!(site_mentions >= 2, "expected both sites in report: {}", cycle.message);
    assert!(cycle.message.contains("while holding"), "{}", cycle.message);

    // The watchdog flags the stalled acquisition within its window.
    assert!(
        wait_for_report(Duration::from_secs(10), |r| {
            r.kind == ReportKind::Watchdog
                && (r.message.contains("abba.test.lock_a")
                    || r.message.contains("abba.test.lock_b"))
        }),
        "no watchdog report within 10s; reports: {:?}",
        reports()
    );

    // Both conflicting edges are in the recorded graph.
    let edges: Vec<LockEdge> = gobo_sanitize::lock_order_edges();
    let has = |from: &str, to: &str| edges.iter().any(|e| e.held == from && e.acquired == to);
    assert!(has("abba.test.lock_a", "abba.test.lock_b"), "missing A->B edge");
    assert!(has("abba.test.lock_b", "abba.test.lock_a"), "missing B->A edge");

    // The wedged threads are deliberately leaked: the test proved the
    // report, the process exits when the suite does.
}

#[test]
fn consistent_order_stays_clean() {
    enable(Mode::Record);
    let outer = Arc::new(SanMutex::new("abba.test.outer", 10, ()));
    let inner = Arc::new(SanMutex::new("abba.test.inner", 20, ()));
    let mut handles = Vec::new();
    for i in 0..4 {
        let (o, f) = (Arc::clone(&outer), Arc::clone(&inner));
        handles.push(
            std::thread::Builder::new()
                .name(format!("ordered-{i}"))
                .spawn(move || {
                    for _ in 0..50 {
                        let _g1 = o.lock();
                        let _g2 = f.lock();
                    }
                })
                .expect("spawn"),
        );
    }
    for h in handles {
        h.join().expect("join");
    }
    assert!(
        !reports()
            .iter()
            .any(|r| r.kind == ReportKind::Cycle && r.message.contains("abba.test.outer")),
        "false cycle on a consistently ordered pair"
    );
    // Contention statistics accumulated for the shared outer lock.
    let stats = gobo_sanitize::lock_stats();
    let outer_stats = stats.iter().find(|s| s.name == "abba.test.outer").expect("stats");
    assert_eq!(outer_stats.rank, 10);
    assert!(outer_stats.acquisitions >= 200);
}

#[test]
fn rank_inversion_and_blocking_io_are_flagged() {
    enable(Mode::Record);
    let low = SanMutex::new("abba.test.rank_low", 5, ());
    let high = SanMutex::new("abba.test.rank_high", 50, ());
    // Acquire against declared order: high first, then low.
    let _gh = high.lock();
    let _gl = low.lock();
    assert!(
        reports().iter().any(
            |r| r.kind == ReportKind::RankInversion && r.message.contains("abba.test.rank_low")
        ),
        "missing rank-inversion report"
    );
    gobo_sanitize::blocking_io("abba.test.socket_read");
    assert!(
        reports().iter().any(|r| r.kind == ReportKind::BlockingIoUnderLock
            && r.message.contains("abba.test.socket_read")),
        "missing blocking-io report"
    );
}

#[test]
fn rwlock_cycle_against_mutex_is_reported() {
    enable(Mode::Record);
    let table = Arc::new(SanRwLock::new("abba.test.table", 60, 0u32));
    let meta = Arc::new(SanMutex::new("abba.test.meta", 61, 0u32));
    // Record table -> meta on this thread…
    {
        let _t = table.read();
        let _m = meta.lock();
    }
    // …then meta -> table on another: the closing edge is a cycle
    // even though nothing deadlocks right now.
    let (t2, m2) = (Arc::clone(&table), Arc::clone(&meta));
    std::thread::Builder::new()
        .name("rw-cycle".into())
        .spawn(move || {
            let _m = m2.lock();
            let _t = t2.write();
        })
        .expect("spawn")
        .join()
        .expect("join");
    assert!(
        reports().iter().any(|r| r.kind == ReportKind::Cycle
            && r.message.contains("abba.test.table")
            && r.message.contains("abba.test.meta")),
        "missing rwlock/mutex cycle report; reports: {:?}",
        reports()
    );
}

#[test]
fn prometheus_render_is_well_formed() {
    enable(Mode::Record);
    let m = SanMutex::new("abba.test.render", 70, ());
    drop(m.lock());
    let mut out = String::new();
    gobo_sanitize::render_prometheus(&mut out);
    assert!(out.contains("# TYPE gobo_sanitize_lock_acquisitions_total counter"));
    assert!(out.contains("gobo_sanitize_lock_acquisitions_total{lock=\"abba.test.render\"}"));
    assert!(out.contains("# TYPE gobo_sanitize_lock_hold_us histogram"));
    assert!(
        out.contains("gobo_sanitize_lock_hold_us_bucket{lock=\"abba.test.render\",le=\"+Inf\"}")
    );
    assert!(out.contains("gobo_sanitize_reports_total{kind=\"cycle\"}"));
}
