//! `gobo-sanitize`: instrumented synchronization primitives that
//! detect deadlocks before they ship.
//!
//! The serving stack is deeply concurrent — a versioned registry with
//! refcount retirement, a claim-based batching scheduler, hedged
//! cluster routing, canary lifecycle windows — and every one of those
//! features added locks. `gobo_lint::interleave` proves hand-modeled
//! protocols correct, but nothing checked the *real* lock graph. This
//! crate closes that gap with drop-in wrappers over the std
//! primitives:
//!
//! * [`SanMutex`] / [`SanRwLock`] — named, ranked locks. At test time
//!   every acquisition records a `held → acquired` edge into a global
//!   lock-order graph; a cycle (potential deadlock) is reported the
//!   moment the closing edge is attempted, **before** the thread
//!   blocks, with a two-site report naming both acquisition sites.
//! * [`SanCondvar`] — condition variables whose sanctioned entry
//!   points are the predicate forms ([`SanCondvar::wait_while`],
//!   [`SanCondvar::wait_timeout_while`]); a raw wait outside a
//!   predicate loop is itself a report.
//! * [`blocking_io`] — markers placed at accept/read/write/connect
//!   sites; holding any sanitized lock across one is a report.
//! * A watchdog: an acquisition that cannot make progress within the
//!   watchdog window (default 5 s, see [`set_watchdog`]) records a
//!   stall report with the full held-stack instead of hanging CI
//!   silently.
//! * Hold-time and contention histograms per lock, rendered in the
//!   same Prometheus text format and 1-2-5 bucket scheme as
//!   `gobo-obs`.
//!
//! # Cost when disabled
//!
//! Mirroring the `gobo-obs` / `gobo-fault` pattern, every wrapper
//! checks **one relaxed atomic load** and then forwards straight to
//! the std primitive — no allocation, no thread-local access, no
//! extra branches on the guard's hot path. Production builds keep the
//! wrappers permanently; CI turns them on.
//!
//! # Modes
//!
//! The `GOBO_SANITIZE` environment variable (read lazily on first
//! use) selects the mode: unset/`0`/`off` — disabled; `1`/`on`/
//! `record` — record reports for later inspection; `fail` — panic at
//! the detection site so a test suite fails on the offending test.
//! [`enable`] sets the mode programmatically (tests).
//!
//! # Lock names and ranks
//!
//! Locks are named `subsystem.component.lock` (the same dotted-path
//! discipline as spans and failpoints) and carry an explicit rank:
//! the documented acquisition order. Acquiring a lock whose rank is
//! not strictly greater than every lock already held is a
//! rank-inversion report even if no cycle has materialized yet. The
//! `gobo lint --locks` static rule cross-checks declared ranks and
//! `// ACQUIRES-AFTER:` annotations; `LOCKS.md` catalogs both.

#![deny(missing_docs)]

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::Location;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

mod hist;
mod sync;

pub use hist::HistogramSnapshot;
pub use sync::{
    SanCondvar, SanMutex, SanMutexGuard, SanRwLock, SanRwLockReadGuard, SanRwLockWriteGuard,
};

/// Environment variable selecting the sanitizer mode.
pub const ENV_VAR: &str = "GOBO_SANITIZE";

/// Environment variable overriding the watchdog window, milliseconds.
pub const ENV_WATCHDOG: &str = "GOBO_SANITIZE_WATCHDOG_MS";

/// Sanitizer operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Wrappers forward to std with no recording (one atomic load).
    Off,
    /// Record reports and statistics for later inspection.
    Record,
    /// Record, and additionally panic at the detection site for
    /// failure-class reports (cycles, condvar misuse, blocking I/O
    /// under a lock) so the offending test fails.
    Fail,
}

const MODE_UNINIT: u8 = 0;
const MODE_OFF: u8 = 1;
const MODE_RECORD: u8 = 2;
const MODE_FAIL: u8 = 3;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);
static WATCHDOG_US: AtomicU64 = AtomicU64::new(5_000_000);

/// Current mode; initializes lazily from `GOBO_SANITIZE` on first use.
pub fn mode() -> Mode {
    // ORDERING: Relaxed — the mode is a monotonic configuration flag;
    // report consistency comes from the registry mutex, not this load.
    match MODE.load(Ordering::Relaxed) {
        MODE_UNINIT => init_from_env(),
        MODE_RECORD => Mode::Record,
        MODE_FAIL => Mode::Fail,
        _ => Mode::Off,
    }
}

/// Whether the sanitizer is recording at all.
pub fn enabled() -> bool {
    mode() != Mode::Off
}

#[cold]
fn init_from_env() -> Mode {
    let mode = match std::env::var(ENV_VAR).ok().as_deref() {
        Some("1") | Some("on") | Some("record") => Mode::Record,
        Some("fail") => Mode::Fail,
        _ => Mode::Off,
    };
    if let Some(ms) = std::env::var(ENV_WATCHDOG).ok().and_then(|v| v.parse::<u64>().ok()) {
        // ORDERING: Relaxed — watchdog tuning, read racily by design.
        WATCHDOG_US.store(ms.saturating_mul(1_000), Ordering::Relaxed);
    }
    enable(mode);
    mode
}

/// Sets the sanitizer mode programmatically (overrides the
/// environment; usable from tests before or after first use).
pub fn enable(mode: Mode) {
    let raw = match mode {
        Mode::Off => MODE_OFF,
        Mode::Record => MODE_RECORD,
        Mode::Fail => MODE_FAIL,
    };
    // ORDERING: Relaxed — see `mode`; no data is published via MODE.
    MODE.store(raw, Ordering::Relaxed);
}

/// Sets the watchdog window: an acquisition stalled longer than this
/// records a [`ReportKind::Watchdog`] report (it keeps waiting — the
/// report is the evidence, the hang stays visible).
pub fn set_watchdog(window: Duration) {
    let us = u64::try_from(window.as_micros()).unwrap_or(u64::MAX);
    // ORDERING: Relaxed — watchdog tuning, read racily by design.
    WATCHDOG_US.store(us.max(1), Ordering::Relaxed);
}

pub(crate) fn watchdog() -> Duration {
    // ORDERING: Relaxed — a stale window only shifts when a stall is
    // reported, never whether bookkeeping is correct.
    Duration::from_micros(WATCHDOG_US.load(Ordering::Relaxed))
}

/// What a [`Report`] is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKind {
    /// A lock-order cycle: two (or more) locks acquired in
    /// conflicting orders on different code paths — a potential
    /// deadlock. The message names both acquisition sites.
    Cycle,
    /// A lock acquired while already holding the same named lock on
    /// this thread (std mutexes are not reentrant).
    Recursive,
    /// A lock acquired whose rank is not strictly above every lock
    /// already held — an undocumented ordering that will become a
    /// cycle the day the opposite path appears.
    RankInversion,
    /// A raw `Condvar::wait`/`wait_timeout` outside a predicate loop;
    /// spurious wakeups make these silently wrong.
    CondvarNoPredicate,
    /// A condvar wait entered while holding *other* sanitized locks —
    /// those stay held for the whole (unbounded) wait.
    CondvarHeldAcross,
    /// Blocking I/O performed while holding a sanitized lock.
    BlockingIoUnderLock,
    /// An acquisition that could not make progress within the
    /// watchdog window (see [`set_watchdog`]).
    Watchdog,
}

impl ReportKind {
    /// Whether this report class fails CI (panics in [`Mode::Fail`]).
    /// Watchdog and rank-inversion reports are evidence, not verdicts.
    pub fn is_failure(self) -> bool {
        matches!(
            self,
            ReportKind::Cycle
                | ReportKind::Recursive
                | ReportKind::CondvarNoPredicate
                | ReportKind::CondvarHeldAcross
                | ReportKind::BlockingIoUnderLock
        )
    }

    /// Stable lowercase label (metrics, rendered reports).
    pub fn label(self) -> &'static str {
        match self {
            ReportKind::Cycle => "cycle",
            ReportKind::Recursive => "recursive",
            ReportKind::RankInversion => "rank_inversion",
            ReportKind::CondvarNoPredicate => "condvar_no_predicate",
            ReportKind::CondvarHeldAcross => "condvar_held_across",
            ReportKind::BlockingIoUnderLock => "blocking_io_under_lock",
            ReportKind::Watchdog => "watchdog",
        }
    }
}

/// One recorded finding.
#[derive(Debug, Clone)]
pub struct Report {
    /// Finding class.
    pub kind: ReportKind,
    /// Human-readable evidence naming every involved site.
    pub message: String,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind.label(), self.message)
    }
}

/// One `held → acquired` edge of the recorded lock-order graph.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock already held when the edge was first recorded.
    pub held: String,
    /// Lock acquired while `held` was held.
    pub acquired: String,
    /// Source location where `held` was acquired.
    pub held_site: String,
    /// Source location where `acquired` was acquired.
    pub acquired_site: String,
    /// Name of the thread that first recorded the edge.
    pub thread: String,
    /// How many times this edge was observed.
    pub count: u64,
}

/// Per-lock acquisition statistics.
#[derive(Debug, Clone)]
pub struct LockStats {
    /// Lock name.
    pub name: String,
    /// Declared rank.
    pub rank: u32,
    /// Total acquisitions (mutex locks, rwlock reads and writes).
    pub acquisitions: u64,
    /// Acquisitions that found the lock held (first `try_lock` lost).
    pub contended: u64,
    /// Hold-time distribution, microseconds.
    pub hold_us: HistogramSnapshot,
    /// Time-to-acquire distribution for contended acquisitions,
    /// microseconds.
    pub wait_us: HistogramSnapshot,
}

#[derive(Debug, Clone)]
struct EdgeInfo {
    held_site: String,
    acquired_site: String,
    thread: String,
    count: u64,
}

#[derive(Default)]
struct StatsCell {
    rank: u32,
    acquisitions: u64,
    contended: u64,
    hold_us: hist::Histogram,
    wait_us: hist::Histogram,
}

#[derive(Default)]
struct Registry {
    /// `edges[held][acquired]` — adjacency of the lock-order graph.
    edges: BTreeMap<&'static str, BTreeMap<&'static str, EdgeInfo>>,
    /// Cycles already reported (sorted participant list), so one bad
    /// pair does not flood the report buffer.
    reported_cycles: BTreeSet<String>,
    /// Rank inversions already reported (`held → acquired` pair).
    reported_inversions: BTreeSet<(&'static str, &'static str)>,
    reports: Vec<Report>,
    stats: BTreeMap<&'static str, StatsCell>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn registry_lock() -> MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// One entry of a thread's held-lock stack.
#[derive(Clone, Copy)]
pub(crate) struct Held {
    pub(crate) name: &'static str,
    pub(crate) rank: u32,
    pub(crate) site: &'static Location<'static>,
    pub(crate) since: Instant,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

fn current_thread_label() -> String {
    let current = std::thread::current();
    match current.name() {
        Some(name) => name.to_owned(),
        None => format!("{:?}", current.id()),
    }
}

fn site_str(site: &Location<'_>) -> String {
    format!("{}:{}:{}", site.file(), site.line(), site.column())
}

/// Records `report`; panics in [`Mode::Fail`] for failure-class kinds.
fn record_report(kind: ReportKind, message: String) {
    let fail = mode() == Mode::Fail && kind.is_failure();
    let rendered = format!("[{}] {}", kind.label(), message);
    registry_lock().reports.push(Report { kind, message });
    if fail {
        panic!("gobo-sanitize fail-mode report: {rendered}");
    }
}

/// Called before an acquisition blocks: records lock-order edges from
/// every held lock, checks recursion, ranks, and cycles.
pub(crate) fn on_acquire_attempt(name: &'static str, rank: u32, site: &'static Location<'static>) {
    let held: Vec<Held> = HELD.with(|h| h.borrow().clone());
    if held.is_empty() {
        return;
    }
    if held.iter().any(|e| e.name == name) {
        record_report(
            ReportKind::Recursive,
            format!(
                "`{name}` acquired at {} while already held by this thread (acquired at {})",
                site_str(site),
                held.iter()
                    .filter(|e| e.name == name)
                    .map(|e| site_str(e.site))
                    .collect::<Vec<_>>()
                    .join(", "),
            ),
        );
        return;
    }
    let thread = current_thread_label();
    let mut pending: Vec<Report> = Vec::new();
    {
        let mut reg = registry_lock();
        for entry in &held {
            if entry.rank >= rank && reg.reported_inversions.insert((entry.name, name)) {
                pending.push(Report {
                    kind: ReportKind::RankInversion,
                    message: format!(
                        "`{name}` (rank {rank}) acquired at {} while holding `{}` (rank {}, acquired at {}) — ranks must strictly increase down the acquisition order",
                        site_str(site),
                        entry.name,
                        entry.rank,
                        site_str(entry.site),
                    ),
                });
            }
            if let Some(report) = add_edge(&mut reg, entry, name, site, &thread) {
                pending.push(report);
            }
        }
        reg.reports.extend(pending.iter().cloned());
    }
    if mode() == Mode::Fail {
        if let Some(failure) = pending.iter().find(|r| r.kind.is_failure()) {
            panic!("gobo-sanitize fail-mode report: {failure}");
        }
    }
}

/// Inserts the `held → acquired` edge and returns a cycle report if
/// the new edge closes a cycle in the order graph.
fn add_edge(
    reg: &mut Registry,
    held: &Held,
    acquired: &'static str,
    site: &'static Location<'static>,
    thread: &str,
) -> Option<Report> {
    let out = reg.edges.entry(held.name).or_default();
    let first_time = match out.get_mut(acquired) {
        Some(info) => {
            info.count = info.count.saturating_add(1);
            false
        }
        None => {
            out.insert(
                acquired,
                EdgeInfo {
                    held_site: site_str(held.site),
                    acquired_site: site_str(site),
                    thread: thread.to_owned(),
                    count: 1,
                },
            );
            true
        }
    };
    if !first_time {
        return None;
    }
    // The new edge `held → acquired` closes a cycle iff `held` is
    // reachable from `acquired` through previously recorded edges.
    let path = find_path(reg, acquired, held.name)?;
    let mut participants: Vec<&str> = path.clone();
    participants.sort_unstable();
    let key = participants.join(" ");
    if !reg.reported_cycles.insert(key) {
        return None;
    }
    // Describe this thread's side, then every edge of the return path.
    let mut message = format!(
        "lock-order cycle: thread `{thread}` acquired `{acquired}` at {} while holding `{}` (acquired at {}); conflicting order already recorded: ",
        site_str(site),
        held.name,
        site_str(held.site),
    );
    let mut legs = Vec::new();
    for pair in path.windows(2) {
        let (from, to) = match (pair.first(), pair.get(1)) {
            (Some(f), Some(t)) => (*f, *t),
            _ => continue,
        };
        if let Some(info) = reg.edges.get(from).and_then(|m| m.get(to)) {
            legs.push(format!(
                "thread `{}` acquired `{to}` at {} while holding `{from}` (acquired at {})",
                info.thread, info.acquired_site, info.held_site,
            ));
        }
    }
    message.push_str(&legs.join("; "));
    Some(Report { kind: ReportKind::Cycle, message })
}

/// Shortest-hop path `from → … → to` through recorded edges, if any.
fn find_path(reg: &Registry, from: &'static str, to: &'static str) -> Option<Vec<&'static str>> {
    let mut parents: BTreeMap<&'static str, &'static str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut path = vec![node];
            let mut cursor = node;
            while let Some(parent) = parents.get(cursor) {
                path.push(*parent);
                cursor = parent;
            }
            path.reverse();
            return Some(path);
        }
        if let Some(out) = reg.edges.get(node) {
            for next in out.keys() {
                if *next != from && !parents.contains_key(next) {
                    parents.insert(next, node);
                    queue.push_back(next);
                }
            }
        }
    }
    None
}

pub(crate) fn push_held(name: &'static str, rank: u32, site: &'static Location<'static>) {
    HELD.with(|h| h.borrow_mut().push(Held { name, rank, site, since: Instant::now() }));
}

/// Pops the newest held entry for `name` and returns its hold time.
pub(crate) fn pop_held(name: &'static str) -> Option<Duration> {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        let idx = held.iter().rposition(|e| e.name == name)?;
        Some(held.remove(idx).since.elapsed())
    })
}

pub(crate) fn held_snapshot() -> Vec<(String, String)> {
    HELD.with(|h| h.borrow().iter().map(|e| (e.name.to_owned(), site_str(e.site))).collect())
}

pub(crate) fn record_acquired(name: &'static str, rank: u32, contended: bool, waited: Duration) {
    let mut reg = registry_lock();
    let cell = reg.stats.entry(name).or_default();
    cell.rank = rank;
    cell.acquisitions = cell.acquisitions.saturating_add(1);
    if contended {
        cell.contended = cell.contended.saturating_add(1);
        cell.wait_us.observe(duration_us(waited));
    }
}

pub(crate) fn record_released(name: &'static str, hold: Duration) {
    let mut reg = registry_lock();
    let cell = reg.stats.entry(name).or_default();
    cell.hold_us.observe(duration_us(hold));
}

pub(crate) fn record_watchdog(
    name: &'static str,
    site: &'static Location<'static>,
    stalled: Duration,
) {
    let held = held_snapshot();
    let held_text = if held.is_empty() {
        "no sanitized locks held".to_owned()
    } else {
        held.iter().map(|(n, s)| format!("`{n}` ({s})")).collect::<Vec<_>>().join(", ")
    };
    record_report(
        ReportKind::Watchdog,
        format!(
            "`{name}` not acquired after {:?} at {} (thread `{}`; {held_text})",
            stalled,
            site_str(site),
            current_thread_label(),
        ),
    );
}

pub(crate) fn record_condvar_no_predicate(name: &'static str, site: &'static Location<'static>) {
    record_report(
        ReportKind::CondvarNoPredicate,
        format!(
            "condvar `{name}` raw wait at {} — use `wait_while`/`wait_timeout_while` so the predicate is re-checked after spurious wakeups",
            site_str(site),
        ),
    );
}

pub(crate) fn record_condvar_held_across(
    name: &'static str,
    site: &'static Location<'static>,
    held: &[(String, String)],
) {
    let held_text = held.iter().map(|(n, s)| format!("`{n}` ({s})")).collect::<Vec<_>>().join(", ");
    record_report(
        ReportKind::CondvarHeldAcross,
        format!(
            "condvar `{name}` wait at {} while still holding {held_text} — those locks stay held for the whole wait",
            site_str(site),
        ),
    );
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Marks a blocking I/O operation (`accept`, `read`, `write`,
/// `connect`, `fsync`…). Holding any sanitized lock here is a report:
/// the lock would stay held for an unbounded network/disk wait.
#[track_caller]
pub fn blocking_io(what: &str) {
    if mode() == Mode::Off {
        return;
    }
    let held = held_snapshot();
    if held.is_empty() {
        return;
    }
    let site = Location::caller();
    let held_text = held.iter().map(|(n, s)| format!("`{n}` ({s})")).collect::<Vec<_>>().join(", ");
    record_report(
        ReportKind::BlockingIoUnderLock,
        format!("blocking I/O `{what}` at {} while holding {held_text}", site_str(site)),
    );
}

/// Snapshot of every recorded report (oldest first).
pub fn reports() -> Vec<Report> {
    registry_lock().reports.clone()
}

/// Drains and returns every recorded report.
pub fn take_reports() -> Vec<Report> {
    std::mem::take(&mut registry_lock().reports)
}

/// Snapshot of the recorded lock-order graph.
pub fn lock_order_edges() -> Vec<LockEdge> {
    let reg = registry_lock();
    let mut edges = Vec::new();
    for (held, out) in &reg.edges {
        for (acquired, info) in out {
            edges.push(LockEdge {
                held: (*held).to_owned(),
                acquired: (*acquired).to_owned(),
                held_site: info.held_site.clone(),
                acquired_site: info.acquired_site.clone(),
                thread: info.thread.clone(),
                count: info.count,
            });
        }
    }
    edges
}

/// Snapshot of per-lock acquisition statistics, sorted by name.
pub fn lock_stats() -> Vec<LockStats> {
    let reg = registry_lock();
    reg.stats
        .iter()
        .map(|(name, cell)| LockStats {
            name: (*name).to_owned(),
            rank: cell.rank,
            acquisitions: cell.acquisitions,
            contended: cell.contended,
            hold_us: cell.hold_us.snapshot(),
            wait_us: cell.wait_us.snapshot(),
        })
        .collect()
}

/// Clears the recorded graph, statistics, and reports (mode and
/// watchdog are untouched). Held-lock stacks of live threads are
/// per-thread state and survive.
pub fn reset() {
    let mut reg = registry_lock();
    reg.edges.clear();
    reg.reported_cycles.clear();
    reg.reported_inversions.clear();
    reg.reports.clear();
    reg.stats.clear();
}

/// Renders acquisition statistics and report counters in Prometheus
/// text exposition format (`gobo_sanitize_*` series, the same 1-2-5
/// bucket scheme as `gobo-obs` histograms). Appends to `out`.
pub fn render_prometheus(out: &mut String) {
    use std::fmt::Write as _;
    let stats = lock_stats();
    let _ = writeln!(
        out,
        "# HELP gobo_sanitize_lock_acquisitions_total Lock acquisitions observed by gobo-sanitize."
    );
    let _ = writeln!(out, "# TYPE gobo_sanitize_lock_acquisitions_total counter");
    for s in &stats {
        let _ = writeln!(
            out,
            "gobo_sanitize_lock_acquisitions_total{{lock=\"{}\"}} {}",
            s.name, s.acquisitions
        );
    }
    let _ = writeln!(
        out,
        "# HELP gobo_sanitize_lock_contended_total Acquisitions that found the lock already held."
    );
    let _ = writeln!(out, "# TYPE gobo_sanitize_lock_contended_total counter");
    for s in &stats {
        let _ = writeln!(
            out,
            "gobo_sanitize_lock_contended_total{{lock=\"{}\"}} {}",
            s.name, s.contended
        );
    }
    hist::render_family(
        out,
        "gobo_sanitize_lock_hold_us",
        "Lock hold time, microseconds.",
        &stats,
        |s| &s.hold_us,
    );
    hist::render_family(
        out,
        "gobo_sanitize_lock_wait_us",
        "Time to acquire a contended lock, microseconds.",
        &stats,
        |s| &s.wait_us,
    );
    let reports = reports();
    let _ = writeln!(out, "# HELP gobo_sanitize_reports_total Sanitizer reports by kind.");
    let _ = writeln!(out, "# TYPE gobo_sanitize_reports_total counter");
    for kind in [
        ReportKind::Cycle,
        ReportKind::Recursive,
        ReportKind::RankInversion,
        ReportKind::CondvarNoPredicate,
        ReportKind::CondvarHeldAcross,
        ReportKind::BlockingIoUnderLock,
        ReportKind::Watchdog,
    ] {
        let count = reports.iter().filter(|r| r.kind == kind).count();
        let _ = writeln!(out, "gobo_sanitize_reports_total{{kind=\"{}\"}} {count}", kind.label());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_are_stable() {
        assert_eq!(ReportKind::Cycle.label(), "cycle");
        assert!(ReportKind::Cycle.is_failure());
        assert!(!ReportKind::Watchdog.is_failure());
        assert!(!ReportKind::RankInversion.is_failure());
    }

    #[test]
    fn blocking_io_without_locks_is_silent() {
        enable(Mode::Record);
        blocking_io("test.noop");
        assert!(
            reports()
                .iter()
                .all(|r| r.kind != ReportKind::BlockingIoUnderLock
                    || !r.message.contains("test.noop"))
        );
    }
}
