//! Internal log-spaced histograms for hold/wait times.
//!
//! This intentionally duplicates `gobo-obs`'s 1-2-5 bucket scheme and
//! text-exposition shape instead of depending on `gobo-obs`: the obs
//! crate itself adopts [`SanMutex`](crate::SanMutex) for its span
//! registries, so a dependency in the other direction would be a
//! cycle. The bounds are identical, which keeps every `_us` histogram
//! in the stack directly comparable.

/// Upper bounds (inclusive) of the non-terminal buckets, a 1-2-5
/// progression in microseconds — byte-for-byte the `gobo-obs` bounds.
pub const BUCKET_BOUNDS: [u64; 20] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000, 5_000_000,
];

/// Number of buckets including the terminal `+Inf` bucket.
pub const BUCKETS: usize = BUCKET_BOUNDS.len() + 1;

/// A single-writer log-spaced histogram (updates happen under the
/// sanitizer's own registry lock, so plain integers suffice).
#[derive(Debug, Default)]
pub(crate) struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    pub(crate) fn observe(&mut self, value: u64) {
        let idx = BUCKET_BOUNDS.iter().position(|b| value <= *b).unwrap_or(BUCKET_BOUNDS.len());
        if let Some(slot) = self.counts.get_mut(idx) {
            *slot = slot.saturating_add(1);
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.counts.to_vec(),
            count: self.count,
            sum: self.sum,
            max: self.max,
        }
    }
}

/// Point-in-time copy of a histogram, shaped for rendering.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; the last entry is `+Inf`.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observation, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Renders one histogram family (`# HELP`/`# TYPE` once, then
/// cumulative `_bucket`/`_sum`/`_count` series per lock).
pub(crate) fn render_family(
    out: &mut String,
    name: &str,
    help: &str,
    stats: &[crate::LockStats],
    select: impl Fn(&crate::LockStats) -> &HistogramSnapshot,
) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for s in stats {
        let snap = select(s);
        let mut cumulative = 0u64;
        for (bucket, bound) in snap.counts.iter().zip(
            BUCKET_BOUNDS.iter().map(|b| b.to_string()).chain(std::iter::once("+Inf".to_owned())),
        ) {
            cumulative = cumulative.saturating_add(*bucket);
            let _ =
                writeln!(out, "{name}_bucket{{lock=\"{}\",le=\"{bound}\"}} {cumulative}", s.name);
        }
        let _ = writeln!(out, "{name}_sum{{lock=\"{}\"}} {}", s.name, snap.sum);
        let _ = writeln!(out, "{name}_count{{lock=\"{}\"}} {}", s.name, snap.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_routes_to_le_bucket() {
        let mut h = Histogram::default();
        h.observe(1);
        h.observe(3);
        h.observe(10_000_000); // beyond the last bound: +Inf
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.max, 10_000_000);
        assert_eq!(snap.counts.first().copied(), Some(1)); // le=1
        assert_eq!(snap.counts.get(2).copied(), Some(1)); // le=5
        assert_eq!(snap.counts.last().copied(), Some(1)); // +Inf
    }

    #[test]
    fn bounds_match_obs() {
        // Keep in lockstep with gobo-obs so `_us` histograms compare.
        assert_eq!(BUCKET_BOUNDS.len(), 20);
        assert_eq!(BUCKET_BOUNDS.first().copied(), Some(1));
        assert_eq!(BUCKET_BOUNDS.last().copied(), Some(5_000_000));
    }
}
