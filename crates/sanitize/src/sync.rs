//! The wrapper primitives: [`SanMutex`], [`SanRwLock`],
//! [`SanCondvar`] and their guards.
//!
//! Disabled (the default), every method is one relaxed atomic load
//! and a direct call into std. Enabled, an acquisition runs through
//! [`crate::on_acquire_attempt`] *before* it can block — so a
//! lock-order cycle is reported even while the threads involved are
//! wedged — then spins on `try_lock` under the watchdog instead of
//! parking forever.
//!
//! All wrappers recover from poisoning (`PoisonError::into_inner`):
//! the workspace treats a panicking lock holder as the supervised
//! worker's problem, not every reader's.

use std::panic::Location;
use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
    TryLockError, WaitTimeoutResult,
};
use std::time::{Duration, Instant};

use crate::{mode, Mode};

/// Polling interval of the watchdog acquisition loop.
const SPIN_SLEEP: Duration = Duration::from_micros(50);

/// Acquires via `try_once`, spinning under the watchdog. Returns the
/// guard and whether the first attempt lost (contention).
fn spin_acquire<G>(
    name: &'static str,
    site: &'static Location<'static>,
    mut try_once: impl FnMut() -> Option<G>,
) -> (G, bool) {
    if let Some(guard) = try_once() {
        return (guard, false);
    }
    let start = Instant::now();
    let mut reported = false;
    loop {
        if let Some(guard) = try_once() {
            return (guard, true);
        }
        if !reported && start.elapsed() >= crate::watchdog() {
            crate::record_watchdog(name, site, start.elapsed());
            reported = true;
        }
        std::thread::sleep(SPIN_SLEEP);
    }
}

/// A guard's `Option` payload is only `None` after `into_raw` took
/// it, and `into_raw` consumes the guard — so a live guard always
/// holds `Some`. Kept panic-free (the sanitizer sits under the
/// workspace panic ratchet like every other locking crate).
#[cold]
fn guard_gone() -> ! {
    std::process::abort()
}

// ---------------------------------------------------------------- Mutex

/// A named, ranked [`Mutex`]. `name` follows the dotted-path
/// discipline (`serve.scheduler.state`); `rank` is the documented
/// acquisition order — a lock may only be acquired while every lock
/// already held has a strictly smaller rank.
#[derive(Debug)]
pub struct SanMutex<T> {
    name: &'static str,
    rank: u32,
    inner: Mutex<T>,
}

impl<T> SanMutex<T> {
    /// Wraps `value`. `const`, so statics work exactly like
    /// `Mutex::new` statics.
    pub const fn new(name: &'static str, rank: u32, value: T) -> Self {
        SanMutex { name, rank, inner: Mutex::new(value) }
    }

    /// The lock's dotted-path name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The lock's declared order rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Acquires the mutex, recovering from poisoning.
    #[track_caller]
    pub fn lock(&self) -> SanMutexGuard<'_, T> {
        if mode() == Mode::Off {
            let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            return SanMutexGuard { lock: self, inner: Some(inner), tracked: false };
        }
        let site = Location::caller();
        crate::on_acquire_attempt(self.name, self.rank, site);
        let start = Instant::now();
        let (inner, contended) = spin_acquire(self.name, site, || match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        });
        crate::record_acquired(self.name, self.rank, contended, start.elapsed());
        crate::push_held(self.name, self.rank, site);
        SanMutexGuard { lock: self, inner: Some(inner), tracked: true }
    }

    /// Re-enters bookkeeping after a condvar wait handed the raw
    /// guard back.
    fn rewrap<'a>(
        &'a self,
        inner: MutexGuard<'a, T>,
        tracked: bool,
        site: &'static Location<'static>,
    ) -> SanMutexGuard<'a, T> {
        if tracked {
            crate::on_acquire_attempt(self.name, self.rank, site);
            crate::record_acquired(self.name, self.rank, false, Duration::ZERO);
            crate::push_held(self.name, self.rank, site);
        }
        SanMutexGuard { lock: self, inner: Some(inner), tracked }
    }
}

/// RAII guard for [`SanMutex`]; releases bookkeeping (held stack,
/// hold-time histogram) on drop.
#[derive(Debug)]
pub struct SanMutexGuard<'a, T> {
    lock: &'a SanMutex<T>,
    inner: Option<MutexGuard<'a, T>>,
    tracked: bool,
}

impl<'a, T> SanMutexGuard<'a, T> {
    /// Runs release bookkeeping and returns the raw std guard (used
    /// by [`SanCondvar`], which must hand std the real guard).
    fn into_raw(mut self) -> Option<MutexGuard<'a, T>> {
        if self.tracked {
            if let Some(hold) = crate::pop_held(self.lock.name) {
                crate::record_released(self.lock.name, hold);
            }
        }
        self.inner.take()
    }
}

impl<T> std::ops::Deref for SanMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(guard) => guard,
            None => guard_gone(),
        }
    }
}

impl<T> std::ops::DerefMut for SanMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(guard) => guard,
            None => guard_gone(),
        }
    }
}

impl<T> Drop for SanMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() && self.tracked {
            if let Some(hold) = crate::pop_held(self.lock.name) {
                crate::record_released(self.lock.name, hold);
            }
        }
    }
}

// --------------------------------------------------------------- RwLock

/// A named, ranked [`RwLock`]. Reads and writes both participate in
/// lock-order tracking: a read acquisition can deadlock just as well
/// once a writer queues between two readers.
#[derive(Debug)]
pub struct SanRwLock<T> {
    name: &'static str,
    rank: u32,
    inner: RwLock<T>,
}

impl<T> SanRwLock<T> {
    /// Wraps `value` (const, statics-friendly).
    pub const fn new(name: &'static str, rank: u32, value: T) -> Self {
        SanRwLock { name, rank, inner: RwLock::new(value) }
    }

    /// The lock's dotted-path name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The lock's declared order rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Acquires a shared read guard, recovering from poisoning.
    #[track_caller]
    pub fn read(&self) -> SanRwLockReadGuard<'_, T> {
        if mode() == Mode::Off {
            let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
            return SanRwLockReadGuard { lock: self, inner: Some(inner), tracked: false };
        }
        let site = Location::caller();
        crate::on_acquire_attempt(self.name, self.rank, site);
        let start = Instant::now();
        let (inner, contended) = spin_acquire(self.name, site, || match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        });
        crate::record_acquired(self.name, self.rank, contended, start.elapsed());
        crate::push_held(self.name, self.rank, site);
        SanRwLockReadGuard { lock: self, inner: Some(inner), tracked: true }
    }

    /// Acquires the exclusive write guard, recovering from poisoning.
    #[track_caller]
    pub fn write(&self) -> SanRwLockWriteGuard<'_, T> {
        if mode() == Mode::Off {
            let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
            return SanRwLockWriteGuard { lock: self, inner: Some(inner), tracked: false };
        }
        let site = Location::caller();
        crate::on_acquire_attempt(self.name, self.rank, site);
        let start = Instant::now();
        let (inner, contended) = spin_acquire(self.name, site, || match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        });
        crate::record_acquired(self.name, self.rank, contended, start.elapsed());
        crate::push_held(self.name, self.rank, site);
        SanRwLockWriteGuard { lock: self, inner: Some(inner), tracked: true }
    }
}

/// Shared read guard for [`SanRwLock`].
#[derive(Debug)]
pub struct SanRwLockReadGuard<'a, T> {
    lock: &'a SanRwLock<T>,
    inner: Option<RwLockReadGuard<'a, T>>,
    tracked: bool,
}

impl<T> std::ops::Deref for SanRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(guard) => guard,
            None => guard_gone(),
        }
    }
}

impl<T> Drop for SanRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() && self.tracked {
            if let Some(hold) = crate::pop_held(self.lock.name) {
                crate::record_released(self.lock.name, hold);
            }
        }
    }
}

/// Exclusive write guard for [`SanRwLock`].
#[derive(Debug)]
pub struct SanRwLockWriteGuard<'a, T> {
    lock: &'a SanRwLock<T>,
    inner: Option<RwLockWriteGuard<'a, T>>,
    tracked: bool,
}

impl<T> std::ops::Deref for SanRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(guard) => guard,
            None => guard_gone(),
        }
    }
}

impl<T> std::ops::DerefMut for SanRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(guard) => guard,
            None => guard_gone(),
        }
    }
}

impl<T> Drop for SanRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() && self.tracked {
            if let Some(hold) = crate::pop_held(self.lock.name) {
                crate::record_released(self.lock.name, hold);
            }
        }
    }
}

// -------------------------------------------------------------- Condvar

/// A named [`Condvar`]. The sanctioned entry points are the predicate
/// forms — [`SanCondvar::wait_while`] and
/// [`SanCondvar::wait_timeout_while`] — which re-check the condition
/// after every (possibly spurious) wakeup. The raw [`SanCondvar::wait`]
/// / [`SanCondvar::wait_timeout`] escape hatches exist for call sites
/// that genuinely loop by hand, and each use is a
/// [`crate::ReportKind::CondvarNoPredicate`] report when the
/// sanitizer is on.
#[derive(Debug)]
pub struct SanCondvar {
    name: &'static str,
    inner: Condvar,
}

impl SanCondvar {
    /// Creates the condvar (const, statics-friendly).
    pub const fn new(name: &'static str) -> Self {
        SanCondvar { name, inner: Condvar::new() }
    }

    /// The condvar's dotted-path name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Reports if this thread still holds sanitized locks besides the
    /// mutex it is about to release for the wait.
    fn check_held_across(&self, waited: &'static str, site: &'static Location<'static>) {
        let others: Vec<(String, String)> =
            crate::held_snapshot().into_iter().filter(|(name, _)| name != waited).collect();
        if !others.is_empty() {
            crate::record_condvar_held_across(self.name, site, &others);
        }
    }

    /// Blocks while `condition` returns `true`, releasing the mutex
    /// for the duration of each wait.
    #[track_caller]
    pub fn wait_while<'a, T, F>(
        &self,
        guard: SanMutexGuard<'a, T>,
        condition: F,
    ) -> SanMutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        let site = Location::caller();
        let lock = guard.lock;
        let tracked = guard.tracked;
        if tracked {
            self.check_held_across(lock.name, site);
        }
        let Some(raw) = guard.into_raw() else { return lock.lock() };
        let raw = self.inner.wait_while(raw, condition).unwrap_or_else(PoisonError::into_inner);
        lock.rewrap(raw, tracked, site)
    }

    /// Blocks while `condition` returns `true`, up to `timeout` of
    /// total wait time.
    #[track_caller]
    pub fn wait_timeout_while<'a, T, F>(
        &self,
        guard: SanMutexGuard<'a, T>,
        timeout: Duration,
        condition: F,
    ) -> (SanMutexGuard<'a, T>, WaitTimeoutResult)
    where
        F: FnMut(&mut T) -> bool,
    {
        let site = Location::caller();
        let lock = guard.lock;
        let tracked = guard.tracked;
        if tracked {
            self.check_held_across(lock.name, site);
        }
        let Some(raw) = guard.into_raw() else {
            let (raw, result) = timed_out_now(&self.inner, lock);
            return (raw, result);
        };
        let (raw, result) = self
            .inner
            .wait_timeout_while(raw, timeout, condition)
            .unwrap_or_else(PoisonError::into_inner);
        (lock.rewrap(raw, tracked, site), result)
    }

    /// Raw wait without a predicate — reported when the sanitizer is
    /// on; prefer [`SanCondvar::wait_while`].
    #[track_caller]
    pub fn wait<'a, T>(&self, guard: SanMutexGuard<'a, T>) -> SanMutexGuard<'a, T> {
        let site = Location::caller();
        let lock = guard.lock;
        let tracked = guard.tracked;
        if tracked {
            crate::record_condvar_no_predicate(self.name, site);
        }
        let Some(raw) = guard.into_raw() else { return lock.lock() };
        let raw = self.inner.wait(raw).unwrap_or_else(PoisonError::into_inner);
        lock.rewrap(raw, tracked, site)
    }

    /// Raw timed wait without a predicate — reported when the
    /// sanitizer is on; prefer [`SanCondvar::wait_timeout_while`].
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: SanMutexGuard<'a, T>,
        timeout: Duration,
    ) -> (SanMutexGuard<'a, T>, WaitTimeoutResult) {
        let site = Location::caller();
        let lock = guard.lock;
        let tracked = guard.tracked;
        if tracked {
            crate::record_condvar_no_predicate(self.name, site);
        }
        let Some(raw) = guard.into_raw() else {
            let (raw, result) = timed_out_now(&self.inner, lock);
            return (raw, result);
        };
        let (raw, result) =
            self.inner.wait_timeout(raw, timeout).unwrap_or_else(PoisonError::into_inner);
        (lock.rewrap(raw, tracked, site), result)
    }
}

/// Fallback for the unreachable guard-already-consumed branch of the
/// timed waits: reacquire and report an immediate timeout.
fn timed_out_now<'a, T>(
    condvar: &Condvar,
    lock: &'a SanMutex<T>,
) -> (SanMutexGuard<'a, T>, WaitTimeoutResult) {
    let guard = lock.lock();
    let Some(raw) = guard.into_raw() else { guard_gone() };
    let (raw, result) =
        condvar.wait_timeout(raw, Duration::from_micros(1)).unwrap_or_else(PoisonError::into_inner);
    (lock.rewrap(raw, true, Location::caller()), result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enable, Mode};

    #[test]
    fn disabled_roundtrip_is_passthrough() {
        // Off-mode guards must not touch global state.
        let m = SanMutex::new("sanitize.test.passthrough", 1, 7u32);
        enable(Mode::Off);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 8);
        enable(Mode::Record);
    }

    #[test]
    fn rwlock_read_then_write() {
        enable(Mode::Record);
        let l = SanRwLock::new("sanitize.test.rw", 2, vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_wait_while_observes_notify() {
        enable(Mode::Record);
        let pair = std::sync::Arc::new((
            SanMutex::new("sanitize.test.cv_state", 3, false),
            SanCondvar::new("sanitize.test.cv"),
        ));
        let waker = std::sync::Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*waker;
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let guard = cv.wait_while(lock.lock(), |ready| !*ready);
        assert!(*guard);
        drop(guard);
        handle.join().ok();
    }

    #[test]
    fn raw_wait_is_reported() {
        enable(Mode::Record);
        let lock = SanMutex::new("sanitize.test.raw_cv_state", 4, ());
        let cv = SanCondvar::new("sanitize.test.raw_cv");
        let (_, timed_out) = cv.wait_timeout(lock.lock(), Duration::from_millis(1));
        assert!(timed_out.timed_out());
        let reports = crate::reports();
        assert!(
            reports.iter().any(|r| r.kind == crate::ReportKind::CondvarNoPredicate
                && r.message.contains("sanitize.test.raw_cv")),
            "missing raw-wait report"
        );
    }
}
