//! Golden-schema pin of the router's `/metrics` exposition.
//!
//! The schema (series names, HELP/TYPE headers, label sets, histogram
//! bucket bounds) is deterministic when node ids are fixed, so it is
//! pinned verbatim; sample values are stripped. A rename or a dropped
//! series fails here before any dashboard notices.

use gobo_cluster::{ClusterMetrics, NodeHealthSample};

/// Reduces an exposition to its schema: comment lines verbatim, sample
/// lines stripped of their value (everything after the final space).
fn schema_of(exposition: &str) -> String {
    let mut out = String::new();
    for line in exposition.lines() {
        if line.starts_with('#') {
            out.push_str(line);
        } else if let Some(idx) = line.rfind(' ') {
            out.push_str(&line[..idx]);
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Golden-file test for the cluster metrics exposition. Regenerate
/// with `UPDATE_GOLDEN=1 cargo test -p gobo-cluster --test observability`.
#[test]
fn cluster_metrics_match_golden_schema() {
    let m = ClusterMetrics::new();
    m.requests.fetch_add(3, std::sync::atomic::Ordering::Relaxed);
    m.hedge_fires.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    m.route_us.observe(1200);
    m.route_us.observe(80_000);
    // Logical ids, never addresses: the schema must not depend on
    // which ephemeral ports a test run happened to get.
    let nodes = vec![
        NodeHealthSample { id: "n1".into(), healthy: true, draining: false, queue_depth: 2 },
        NodeHealthSample { id: "n2".into(), healthy: false, draining: true, queue_depth: 0 },
    ];
    let text = m.render(&nodes);

    let schema = schema_of(&text);
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics_schema.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &schema).expect("write golden");
    } else {
        let golden = std::fs::read_to_string(golden_path).expect("golden file exists");
        assert_eq!(schema, golden, "metrics schema drifted; run with UPDATE_GOLDEN=1 if intended");
    }

    // Histogram invariants on the live exposition: cumulative buckets
    // ending in a +Inf bucket that equals the count.
    let buckets: Vec<(String, u64)> = text
        .lines()
        .filter_map(|l| l.strip_prefix("gobo_cluster_route_us_bucket{le=\""))
        .map(|rest| {
            let (le, value) = rest.split_once("\"} ").unwrap();
            (le.to_owned(), value.parse().unwrap())
        })
        .collect();
    assert!(!buckets.is_empty(), "no route_us buckets:\n{text}");
    assert_eq!(buckets.last().unwrap().0, "+Inf");
    for pair in buckets.windows(2) {
        assert!(pair[0].1 <= pair[1].1, "buckets not cumulative: {buckets:?}");
    }
    let count: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("gobo_cluster_route_us_count "))
        .and_then(|v| v.parse().ok())
        .unwrap();
    assert_eq!(buckets.last().unwrap().1, count);
    assert_eq!(count, 2);
}
