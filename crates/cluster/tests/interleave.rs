//! Concurrency audit: exhaustive interleaving checks for the router's
//! canary verdict-window accounting.
//!
//! The real protocol (`crates/cluster/src/router.rs`) is:
//! `record_trial_sample` takes the canary read lock, then the trial
//! window mutex, pushes one latency sample, and computes a verdict —
//! `Pending` until the canary window is full. `apply_verdict` takes
//! the canary *write* lock and `Option::take`s the trial; counters
//! move only when the take wins, so two racing verdicts resolve to one
//! transition. A failure path (`route` on canary error) force-applies
//! `Rollback` without recording.
//!
//! These tests model exactly the operations that are atomic in the
//! real implementation — one record-and-judge under both locks, one
//! take-and-count under the write lock — and enumerate every schedule
//! of two sampling workers against a forced-rollback path. Invariants
//! proved across all schedules:
//!
//! * **exactly-one transition** — promotions + rollbacks move exactly
//!   once no matter how verdicts race;
//! * **no ghost trial** — the trial is always gone once any verdict
//!   lands; late appliers see `None` and move nothing;
//! * **full-window verdicts only** — a worker only decides with a
//!   full canary window at record time;
//! * **frozen window** — samples stop counting the moment the trial
//!   is taken.
//!
//! The sleep-set DPOR explorer re-proves the same invariants with the
//! schedule count logged against naive DFS — the 3-thread
//! configuration this crate leans on in CI.

use gobo_lint::interleave::{explore_dpor, explore_exhaustive, DporProgram, Footprint, Program};

/// Canary window size in the model: two samples fill it.
const WINDOW: u32 = 2;

/// Abstract variable ids for DPOR footprints. `TRIAL` is the
/// `Option<CanaryTrial>` behind the canary rwlock, `WINDOW_VAR` the
/// sample vectors behind the trial window mutex, `COUNTERS` the
/// promotion/rollback metrics.
const V_TRIAL: u32 = 0;
const V_WINDOW: u32 = 1;
const V_COUNTERS: u32 = 2;

/// The modeled canary state.
#[derive(Clone)]
struct Canary {
    /// Whether the trial is still in flight (`Some` in the real code).
    trial: bool,
    /// Canary samples recorded into the window.
    samples: u32,
    /// Promotions + rollbacks counted — must end at exactly 1.
    transitions: u32,
    /// Set if any worker decided a verdict with a partial window.
    partial_verdict: bool,
    /// Set if a sample landed after the trial was taken.
    ghost_sample: bool,
}

impl Canary {
    fn new() -> Canary {
        Canary {
            trial: true,
            samples: 0,
            transitions: 0,
            partial_verdict: false,
            ghost_sample: false,
        }
    }
}

/// A routing worker on the canary path: (1) the encode completes —
/// purely local latency measurement, no shared state; (2) the
/// record-and-judge step under canary read + window locks; (3) the
/// apply step under the canary write lock.
#[derive(Clone)]
struct Worker {
    encoded: bool,
    recorded: bool,
    /// Local verdict from the record step (`Some(true)` = decided).
    decided: Option<bool>,
    done: bool,
}

impl Worker {
    fn new() -> Worker {
        Worker { encoded: false, recorded: false, decided: None, done: false }
    }
}

impl Program<Canary> for Worker {
    fn step(&mut self, canary: &mut Canary) {
        if !self.encoded {
            // Step 1: the request finishes; elapsed time is thread-local.
            self.encoded = true;
        } else if !self.recorded {
            // Step 2: record_trial_sample — push one sample, judge.
            // When the trial is already taken the real code returns
            // Pending without touching the window (the freeze).
            if canary.trial {
                canary.samples += 1;
                if canary.samples >= WINDOW {
                    self.decided = Some(true);
                }
            } else {
                canary.ghost_sample |= self.decided.is_some();
            }
            if self.decided.is_some() && canary.samples < WINDOW {
                canary.partial_verdict = true;
            }
            self.recorded = true;
        } else {
            // Step 3: apply_verdict — only the winning take counts.
            if self.decided.is_some() && canary.trial {
                canary.trial = false;
                canary.transitions += 1;
            }
            self.done = true;
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl DporProgram<Canary> for Worker {
    fn next_footprint(&self) -> Footprint {
        if !self.encoded {
            // Local step: independent of everything.
            Footprint::new(&[], &[])
        } else if !self.recorded {
            Footprint::new(&[V_TRIAL, V_WINDOW], &[V_WINDOW])
        } else {
            Footprint::new(&[V_TRIAL], &[V_TRIAL, V_COUNTERS])
        }
    }
}

/// The failure path: `apply_verdict(Rollback)` forced by a canary
/// error, one atomic take-and-count under the canary write lock.
#[derive(Clone)]
struct ForcedRollback {
    done: bool,
}

impl Program<Canary> for ForcedRollback {
    fn step(&mut self, canary: &mut Canary) {
        if canary.trial {
            canary.trial = false;
            canary.transitions += 1;
        }
        self.done = true;
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl DporProgram<Canary> for ForcedRollback {
    fn next_footprint(&self) -> Footprint {
        Footprint::new(&[V_TRIAL], &[V_TRIAL, V_COUNTERS])
    }
}

/// Mixed programs so one explorer run can hold workers and the
/// failure path.
#[derive(Clone)]
enum Thread {
    Work(Worker),
    Fail(ForcedRollback),
}

impl Program<Canary> for Thread {
    fn step(&mut self, canary: &mut Canary) {
        match self {
            Thread::Work(w) => w.step(canary),
            Thread::Fail(f) => f.step(canary),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            Thread::Work(w) => w.is_done(),
            Thread::Fail(f) => f.is_done(),
        }
    }
}

impl DporProgram<Canary> for Thread {
    fn next_footprint(&self) -> Footprint {
        match self {
            Thread::Work(w) => w.next_footprint(),
            Thread::Fail(f) => f.next_footprint(),
        }
    }
}

/// Shared terminal-state check.
fn assert_canary_clean(canary: &Canary, schedule: &[usize]) {
    assert_eq!(
        canary.transitions, 1,
        "verdict applied {} times in schedule {schedule:?}",
        canary.transitions
    );
    assert!(!canary.trial, "trial still in flight after all threads finished: {schedule:?}");
    assert!(!canary.partial_verdict, "verdict decided on a partial window in {schedule:?}");
    assert!(!canary.ghost_sample, "sample judged after the trial was taken in {schedule:?}");
    assert!(canary.samples <= WINDOW, "window overfilled in schedule {schedule:?}");
}

fn threads() -> [Thread; 3] {
    [
        Thread::Work(Worker::new()),
        Thread::Work(Worker::new()),
        Thread::Fail(ForcedRollback { done: false }),
    ]
}

#[test]
fn interleave_canary_verdict_every_schedule_transitions_once() {
    let count = explore_exhaustive(&Canary::new(), &threads(), |canary, schedule| {
        assert_canary_clean(canary, schedule);
    });
    // 2 workers × 3 steps + 1 forced rollback = 7!/(3!3!1!) = 140.
    assert_eq!(count, 140);
}

/// The same proof through sleep-set DPOR, with the reduction logged —
/// the purely local encode steps and the already-applied tails
/// collapse to one representative each.
#[test]
fn interleave_canary_verdict_dpor_matches_naive_invariants() {
    let start = std::time::Instant::now();
    let naive = explore_exhaustive(&Canary::new(), &threads(), |canary, schedule| {
        assert_canary_clean(canary, schedule);
    });
    let naive_elapsed = start.elapsed();
    let start = std::time::Instant::now();
    let stats = explore_dpor(&Canary::new(), &threads(), |canary, schedule| {
        assert_canary_clean(canary, schedule);
    });
    let dpor_elapsed = start.elapsed();
    println!(
        "canary verdict window: naive {} schedules in {:?}; \
         dpor {} schedules, {} sleep prunes, {} steps in {:?}",
        naive, naive_elapsed, stats.schedules, stats.sleep_prunes, stats.steps, dpor_elapsed
    );
    assert!(
        stats.schedules < naive,
        "DPOR explored {} schedules — no reduction over naive {naive}",
        stats.schedules
    );
}

/// A broken apply that skips the take-wins check — the double-count
/// bug the `Option::take` protocol exists to prevent. The explorer
/// must surface a schedule where the verdict lands twice.
#[derive(Clone)]
struct DoubleApply {
    recorded: bool,
    done: bool,
}

impl Program<Canary> for DoubleApply {
    fn step(&mut self, canary: &mut Canary) {
        if !self.recorded {
            if canary.trial {
                canary.samples += 1;
            }
            self.recorded = true;
        } else {
            // Bug: counts the transition without checking the trial is
            // still present.
            if canary.samples >= WINDOW {
                canary.trial = false;
                canary.transitions += 1;
            }
            self.done = true;
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

#[test]
fn interleave_explorer_catches_double_apply_bug() {
    #[derive(Clone)]
    enum T {
        Broken(DoubleApply),
    }
    impl Program<Canary> for T {
        fn step(&mut self, canary: &mut Canary) {
            let T::Broken(b) = self;
            b.step(canary);
        }
        fn is_done(&self) -> bool {
            let T::Broken(b) = self;
            b.is_done()
        }
    }
    let threads = [
        T::Broken(DoubleApply { recorded: false, done: false }),
        T::Broken(DoubleApply { recorded: false, done: false }),
    ];
    let mut double_counted = 0u64;
    let total = explore_exhaustive(&Canary::new(), &threads, |canary, _| {
        if canary.transitions > 1 {
            double_counted += 1;
        }
    });
    assert_eq!(total, 6);
    assert!(double_counted > 0, "explorer failed to find the double-apply race");
}
