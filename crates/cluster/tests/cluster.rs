//! End-to-end cluster tests over real TCP: byte-identity of routed
//! responses, failover when a replica dies, hedged rescue of a slow or
//! partitioned primary, drain handling, and the HTTP front door.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gobo::format::CompressedModel;
use gobo::pipeline::{quantize_model, QuantizeOptions};
use gobo_cluster::{ClusterNode, Router, RouterConfig, RouterServer};
use gobo_model::config::ModelConfig;
use gobo_model::TransformerModel;
use gobo_serve::json::{parse, Json};
use gobo_serve::{CanaryPolicy, Client, EncodeRequest, ServeCore, ServeOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn compressed(seed: u64) -> CompressedModel {
    let config = ModelConfig::tiny("Cluster", 1, 16, 2, 40, 12).unwrap();
    let model = TransformerModel::new(config, &mut StdRng::seed_from_u64(seed)).unwrap();
    let outcome = quantize_model(&model, &QuantizeOptions::gobo(3).unwrap()).unwrap();
    CompressedModel::new(&model, outcome.archive)
}

struct TestNode {
    id: String,
    core: Arc<ServeCore>,
    node: ClusterNode,
}

/// Starts `n` nodes, each serving the same container as "demo", and a
/// router over them with fast heartbeats and the given config tweaks.
fn start_cluster(n: usize, mut config: RouterConfig) -> (Vec<TestNode>, Router) {
    let container = compressed(7);
    let mut nodes = Vec::new();
    for i in 0..n {
        let core = ServeCore::start(ServeOptions::default());
        Client::new(Arc::clone(&core)).register("demo", &container).unwrap();
        let node = ClusterNode::start(Arc::clone(&core), "127.0.0.1:0").unwrap();
        nodes.push(TestNode { id: format!("n{}", i + 1), core, node });
    }
    config.heartbeat_interval = Duration::from_millis(25);
    config.heartbeat_timeout = Duration::from_millis(250);
    config.dead_after = 2;
    let router = Router::new(config);
    for node in &nodes {
        router.add_node(node.id.clone(), node.node.local_addr().to_string());
    }
    (nodes, router)
}

fn primary_index(nodes: &[TestNode], router: &Router) -> usize {
    let ordered = router.replicas_for("demo", None);
    let primary = ordered.first().expect("at least one replica");
    nodes.iter().position(|n| n.id == primary.id).expect("primary is a known node")
}

fn assert_bits_identical(routed: &[f32], direct: &[f32]) {
    assert_eq!(routed.len(), direct.len(), "tensor sizes differ");
    for (i, (a, b)) in routed.iter().zip(direct.iter()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "element {i} differs: {a} vs {b}");
    }
}

#[test]
fn routed_encode_is_byte_identical_to_direct() {
    let (nodes, router) = start_cluster(3, RouterConfig::default());
    let direct = Client::new(Arc::clone(&nodes[0].core))
        .encode(EncodeRequest::new("demo", vec![1, 2, 3]))
        .unwrap();

    let ok = router.encode("demo", None, &[1, 2, 3], &[], 0).unwrap();
    assert_eq!(ok.model, "demo");
    assert_eq!(ok.dims, vec![3, 16]);
    assert_bits_identical(&ok.hidden, &direct.hidden);
    match (&ok.pooled, &direct.pooled) {
        (Some(a), Some(b)) => assert_bits_identical(a, b),
        (None, None) => {}
        other => panic!("pooled presence differs: {other:?}"),
    }

    // Replica placement is stable and uses RF distinct members.
    let replicas = router.replicas_for("demo", None);
    assert_eq!(replicas.len(), 2);
    assert_ne!(replicas[0].id, replicas[1].id);
}

#[test]
fn failover_survives_a_killed_replica() {
    let (mut nodes, router) = start_cluster(3, RouterConfig::default());
    let direct = Client::new(Arc::clone(&nodes[0].core))
        .encode(EncodeRequest::new("demo", vec![4, 5]))
        .unwrap();

    let victim = primary_index(&nodes, &router);
    nodes[victim].node.shutdown();
    nodes[victim].core.shutdown();

    // Routing still succeeds via the surviving replica, immediately.
    let ok = router.encode("demo", None, &[4, 5], &[], 0).unwrap();
    assert_bits_identical(&ok.hidden, &direct.hidden);
    let m = router.metrics();
    assert!(
        m.failovers.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "expected at least one failover"
    );

    // Heartbeats mark the victim dead and the metrics say so.
    router.start();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let down = router.membership().iter().filter(|n| !n.healthy).count();
        if down == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "victim never marked dead");
        std::thread::sleep(Duration::from_millis(10));
    }
    let text = router.render_metrics();
    assert!(text.contains("gobo_cluster_node_down 1"), "{text}");
    assert!(m.mark_dead.load(std::sync::atomic::Ordering::Relaxed) >= 1);

    // Once dead, the victim is out of the replica set entirely.
    for replica in router.replicas_for("demo", None) {
        assert_ne!(replica.id, nodes[victim].id);
    }
    router.shutdown();
}

#[test]
fn hedge_rescues_a_slow_primary_and_demotes_it() {
    let config =
        RouterConfig { hedge_after: Some(Duration::from_millis(10)), ..RouterConfig::default() };
    let (nodes, router) = start_cluster(3, config);
    let direct = Client::new(Arc::clone(&nodes[0].core))
        .encode(EncodeRequest::new("demo", vec![7, 8, 9]))
        .unwrap();

    let slow = primary_index(&nodes, &router);
    nodes[slow].node.set_artificial_delay(Duration::from_millis(150));

    let start = Instant::now();
    let ok = router.encode("demo", None, &[7, 8, 9], &[], 0).unwrap();
    let elapsed = start.elapsed();
    assert_bits_identical(&ok.hidden, &direct.hidden);
    assert!(
        elapsed < Duration::from_millis(120),
        "hedge should beat the 150ms slow primary, took {elapsed:?}"
    );
    let m = router.metrics();
    assert!(m.hedge_fires.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    assert!(m.hedge_wins.load(std::sync::atomic::Ordering::Relaxed) >= 1);

    // The slow node's score rose, demoting it out of the primary slot.
    let ordered = router.replicas_for("demo", None);
    assert_ne!(ordered.first().unwrap().id, nodes[slow].id, "slow node must be demoted");
}

#[test]
fn hedge_rescues_a_partitioned_primary() {
    let config =
        RouterConfig { hedge_after: Some(Duration::from_millis(10)), ..RouterConfig::default() };
    let (nodes, router) = start_cluster(3, config);
    let victim = primary_index(&nodes, &router);
    nodes[victim].node.set_partitioned(true);

    // The partitioned node reads the request but never answers; only
    // the hedge saves this request from the full request timeout.
    let ok = router.encode("demo", None, &[1], &[], 0).unwrap();
    assert_eq!(ok.dims, vec![1, 16]);
    let m = router.metrics();
    assert!(m.hedge_wins.load(std::sync::atomic::Ordering::Relaxed) >= 1);

    nodes[victim].node.set_partitioned(false);
}

#[test]
fn draining_node_fails_over_and_advertises_drain() {
    let (nodes, router) = start_cluster(2, RouterConfig::default());
    let victim = primary_index(&nodes, &router);
    nodes[victim].node.begin_drain();
    assert!(nodes[victim].node.is_draining());

    // `shutting_down` is retryable: the router fails over.
    let ok = router.encode("demo", None, &[2, 3], &[], 0).unwrap();
    assert_eq!(ok.dims, vec![2, 16]);
    assert!(router.metrics().failovers.load(std::sync::atomic::Ordering::Relaxed) >= 1);

    // Heartbeats pick up the drain flag and rebuild the ring.
    router.start();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if router.membership().iter().any(|n| n.draining) {
            break;
        }
        assert!(Instant::now() < deadline, "drain never observed by heartbeat");
        std::thread::sleep(Duration::from_millis(10));
    }
    router.shutdown();
}

#[test]
fn dead_node_is_marked_alive_again_after_recovery() {
    let (nodes, router) = start_cluster(3, RouterConfig::default());
    let victim = primary_index(&nodes, &router);
    nodes[victim].node.set_partitioned(true);
    router.start();

    let deadline = Instant::now() + Duration::from_secs(5);
    while router.membership().iter().all(|n| n.healthy) {
        assert!(Instant::now() < deadline, "partitioned node never marked dead");
        std::thread::sleep(Duration::from_millis(10));
    }

    nodes[victim].node.set_partitioned(false);
    let deadline = Instant::now() + Duration::from_secs(5);
    while router.membership().iter().any(|n| !n.healthy) {
        assert!(Instant::now() < deadline, "healed node never marked alive");
        std::thread::sleep(Duration::from_millis(10));
    }
    let m = router.metrics();
    assert!(m.mark_dead.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    assert!(m.mark_alive.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    router.shutdown();
}

#[test]
fn terminal_errors_return_immediately_without_failover() {
    let (_nodes, router) = start_cluster(2, RouterConfig::default());
    let err = router.encode("nope", None, &[1], &[], 0).unwrap_err();
    assert_eq!(err.code(), "model_not_found");
    assert_eq!(err.http_status(), 404);
    assert_eq!(router.metrics().failovers.load(std::sync::atomic::Ordering::Relaxed), 0);
}

#[test]
fn empty_router_reports_no_replica() {
    let router = Router::new(RouterConfig::default());
    let err = router.encode("demo", None, &[1], &[], 0).unwrap_err();
    assert_eq!(err.code(), "no_healthy_replica");
    assert_eq!(err.http_status(), 503);
}

#[test]
fn injected_route_failpoint_surfaces_as_internal() {
    let (_nodes, router) = start_cluster(1, RouterConfig::default());
    gobo_fault::configure_str("cluster.route=error").unwrap();
    let err = router.encode("demo", None, &[1], &[], 0).unwrap_err();
    gobo_fault::reset();
    assert_eq!(err.code(), "internal");
}

/// A healthy canary node under a trial with a generous regression
/// threshold fills its window and is auto-promoted; every routed
/// response stays byte-identical throughout the trial.
#[test]
fn canary_trial_promotes_a_healthy_node() {
    let config = RouterConfig {
        canary: CanaryPolicy {
            traffic_pct: 50,
            window: 4,
            // Identical tiny nodes on one machine: a generous factor
            // keeps scheduler jitter from failing a healthy canary.
            p95_factor_pct: 10_000,
            min_baseline: 2,
        },
        ..RouterConfig::default()
    };
    let (nodes, router) = start_cluster(3, config);
    let direct = Client::new(Arc::clone(&nodes[0].core))
        .encode(EncodeRequest::new("demo", vec![1, 2, 3]))
        .unwrap();

    assert!(!router.set_canary("ghost"), "unknown ids must not start a trial");
    let trial = (primary_index(&nodes, &router) + 1) % nodes.len();
    assert!(router.set_canary(&nodes[trial].id));
    assert_eq!(router.canary_node().as_deref(), Some(nodes[trial].id.as_str()));

    let mut spins = 0;
    while router.canary_node().is_some() {
        let ok = router.encode("demo", None, &[1, 2, 3], &[], 0).unwrap();
        assert_bits_identical(&ok.hidden, &direct.hidden);
        spins += 1;
        assert!(spins < 200, "trial never reached a verdict");
    }
    let m = router.metrics();
    assert_eq!(m.canary_promotions.load(std::sync::atomic::Ordering::Relaxed), 1);
    assert_eq!(m.canary_rollbacks.load(std::sync::atomic::Ordering::Relaxed), 0);
    assert!(m.canary_requests.load(std::sync::atomic::Ordering::Relaxed) >= 4);
}

/// A slow canary node is rolled back on the p95 comparison and
/// demoted to last pick — while hedged backups keep every client
/// response fast and byte-identical.
#[test]
fn canary_trial_rolls_back_a_slow_node() {
    let config = RouterConfig {
        hedge_after: Some(Duration::from_millis(25)),
        canary: CanaryPolicy { traffic_pct: 50, window: 4, p95_factor_pct: 300, min_baseline: 2 },
        ..RouterConfig::default()
    };
    let (nodes, router) = start_cluster(3, config);
    let direct = Client::new(Arc::clone(&nodes[0].core))
        .encode(EncodeRequest::new("demo", vec![4, 5]))
        .unwrap();

    let trial = (primary_index(&nodes, &router) + 1) % nodes.len();
    nodes[trial].node.set_artificial_delay(Duration::from_millis(100));
    assert!(router.set_canary(&nodes[trial].id));

    let mut spins = 0;
    while router.canary_node().is_some() {
        let ok = router.encode("demo", None, &[4, 5], &[], 0).unwrap();
        assert_bits_identical(&ok.hidden, &direct.hidden);
        spins += 1;
        assert!(spins < 200, "trial never reached a verdict");
    }
    let m = router.metrics();
    assert_eq!(m.canary_rollbacks.load(std::sync::atomic::Ordering::Relaxed), 1);
    assert_eq!(m.canary_promotions.load(std::sync::atomic::Ordering::Relaxed), 0);
    let info = router
        .membership()
        .into_iter()
        .find(|n| n.id == nodes[trial].id)
        .expect("trial node in membership");
    assert!(info.slow_score >= 8, "rolled-back node must be demoted, score {}", info.slow_score);
    assert_ne!(
        router.replicas_for("demo", None).first().unwrap().id,
        nodes[trial].id,
        "rolled-back node must not be the primary pick"
    );
}

/// A canary node that dies mid-trial rolls back on the first failed
/// attempt; the request itself fails over and still succeeds.
#[test]
fn canary_rolls_back_when_the_trial_node_dies() {
    let config = RouterConfig {
        canary: CanaryPolicy { traffic_pct: 100, window: 8, p95_factor_pct: 300, min_baseline: 1 },
        ..RouterConfig::default()
    };
    let (mut nodes, router) = start_cluster(3, config);
    let direct = Client::new(Arc::clone(&nodes[0].core))
        .encode(EncodeRequest::new("demo", vec![6]))
        .unwrap();

    let trial = (primary_index(&nodes, &router) + 1) % nodes.len();
    assert!(router.set_canary(&nodes[trial].id));
    nodes[trial].node.shutdown();
    nodes[trial].core.shutdown();

    let ok = router.encode("demo", None, &[6], &[], 0).unwrap();
    assert_bits_identical(&ok.hidden, &direct.hidden);
    assert_eq!(router.canary_node(), None, "trial must end on the failed attempt");
    let m = router.metrics();
    assert_eq!(m.canary_rollbacks.load(std::sync::atomic::Ordering::Relaxed), 1);
    assert!(m.failovers.load(std::sync::atomic::Ordering::Relaxed) >= 1);
}

fn http_request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let message = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(message.as_bytes()).expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let payload = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    (status, payload)
}

#[test]
fn http_front_speaks_the_node_dialect() {
    let (nodes, router) = start_cluster(3, RouterConfig::default());
    let direct = Client::new(Arc::clone(&nodes[0].core))
        .encode(EncodeRequest::new("demo", vec![1, 2, 3]))
        .unwrap();
    let front = RouterServer::bind(Arc::new(router), "127.0.0.1:0").unwrap();
    let addr = front.local_addr();

    let (status, body) = http_request(
        addr,
        "POST",
        "/v1/encode",
        "{\"model\":\"demo\",\"ids\":[1,2,3],\"type_ids\":[0,0,0]}",
    );
    assert_eq!(status, 200, "{body}");
    let value = parse(&body).unwrap();
    assert_eq!(value.get("model").and_then(Json::as_str), Some("demo"));
    let data = value
        .get("hidden")
        .and_then(|h| h.get("data"))
        .and_then(Json::as_array)
        .expect("hidden.data array");
    assert_eq!(data.len(), direct.hidden.len());
    for (i, (v, want)) in data.iter().zip(direct.hidden.iter()).enumerate() {
        let got = v.as_f64().expect("numeric element") as f32;
        assert_eq!(got.to_bits(), want.to_bits(), "hidden[{i}] differs over HTTP");
    }

    let (status, body) = http_request(addr, "GET", "/v1/cluster", "");
    assert_eq!(status, 200);
    let value = parse(&body).unwrap();
    let members = value.get("nodes").and_then(Json::as_array).expect("nodes array");
    assert_eq!(members.len(), 3);
    assert!(members.iter().all(|n| n.get("healthy") == Some(&Json::Bool(true))));

    let (status, metrics) = http_request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(metrics.contains("gobo_cluster_requests_total"), "{metrics}");
    assert!(metrics.contains("gobo_cluster_canary_requests_total"), "{metrics}");

    // Canary admin: start a trial on a member, see it in the
    // snapshot, and get a 404 for an unknown id.
    let (status, body) = http_request(addr, "POST", "/v1/canary", "{\"node\":\"n2\"}");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"canary\""), "{body}");
    let (_, body) = http_request(addr, "GET", "/v1/cluster", "");
    assert_eq!(parse(&body).unwrap().get("canary").and_then(Json::as_str), Some("n2"), "{body}");
    let (status, body) = http_request(addr, "POST", "/v1/canary", "{\"node\":\"ghost\"}");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("node_not_found"), "{body}");
    let (status, _) = http_request(addr, "POST", "/v1/canary", "{}");
    assert_eq!(status, 400);

    let (status, body) =
        http_request(addr, "POST", "/v1/encode", "{\"model\":\"missing\",\"ids\":[1]}");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("model_not_found"), "{body}");

    let (status, _) = http_request(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    front.serve_until_shutdown();
}
