//! The router's HTTP front door.
//!
//! Speaks the exact JSON dialect of a single `gobo-serve` node —
//! `POST /v1/encode` request and response bodies are shaped
//! identically — so clients cannot tell a router from a node, and the
//! serving tier can grow from one process to a cluster without a
//! client change. Adds `GET /v1/cluster` (membership snapshot,
//! including any canary trial in flight), `POST /v1/canary` (start a
//! canary trial on a member), and serves the cluster metrics on
//! `GET /metrics`.

use std::net::SocketAddr;
use std::sync::Arc;

use gobo_serve::http::error_body;
use gobo_serve::json::{parse, Json};
use gobo_serve::{
    parse_encode_body, HttpHandler, HttpListener, HttpOptions, HttpResponse, ParsedRequest,
    ShutdownSignal,
};

use crate::router::Router;

/// A bound, accepting HTTP front over a [`Router`].
pub struct RouterServer {
    router: Arc<Router>,
    listener: HttpListener,
    signal: Arc<ShutdownSignal>,
}

struct RouterHandler {
    router: Arc<Router>,
    signal: Arc<ShutdownSignal>,
}

impl HttpHandler for RouterHandler {
    fn handle(&self, request: &ParsedRequest) -> HttpResponse {
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/v1/encode") => encode(&self.router, &request.body),
            ("GET", "/v1/cluster") => HttpResponse::json(200, membership_body(&self.router)),
            ("POST", "/v1/canary") => canary(&self.router, &request.body),
            ("GET", "/metrics") => HttpResponse {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: self.router.render_metrics(),
                close: false,
            },
            ("POST", "/v1/shutdown") => {
                self.signal.request();
                HttpResponse {
                    status: 200,
                    content_type: "application/json",
                    body: "{\"status\":\"draining\"}".to_owned(),
                    close: true,
                }
            }
            _ => HttpResponse::json(404, error_body(404, "not_found", "no such route")),
        }
    }
}

fn encode(router: &Router, body: &[u8]) -> HttpResponse {
    let request = match parse_encode_body(body) {
        Ok(request) => request,
        Err(e) => {
            return HttpResponse::json(
                e.http_status(),
                error_body(e.http_status(), e.code(), &e.to_string()),
            )
        }
    };
    let ids: Vec<u32> = request.ids.iter().map(|&v| v as u32).collect();
    let type_ids: Vec<u32> = request.type_ids.iter().map(|&v| v as u32).collect();
    let deadline_ms = request.deadline.map_or(0, |d| d.as_millis() as u64);
    match router.encode(&request.model, request.bits, &ids, &type_ids, deadline_ms) {
        Ok(ok) => {
            let pooled = match &ok.pooled {
                Some(values) => Json::f32_array(values),
                None => Json::Null,
            };
            let dims: Vec<usize> = ok.dims.iter().map(|&d| d as usize).collect();
            // Field order matches a node's own /v1/encode response.
            let body = Json::obj(vec![
                ("model", Json::Str(ok.model.clone())),
                ("bits", Json::Num(f64::from(ok.bits))),
                ("batch_size", Json::Num(f64::from(ok.batch_size))),
                ("queue_us", Json::Num(ok.queue_us as f64)),
                ("compute_us", Json::Num(ok.compute_us as f64)),
                (
                    "hidden",
                    Json::obj(vec![
                        ("dims", Json::usize_array(&dims)),
                        ("data", Json::f32_array(&ok.hidden)),
                    ]),
                ),
                ("pooled", pooled),
            ])
            .to_string();
            HttpResponse::json(200, body)
        }
        Err(e) => HttpResponse::json(
            e.http_status(),
            error_body(e.http_status(), e.code(), &e.to_string()),
        ),
    }
}

/// `POST /v1/canary` — `{"node": "<id>"}` starts a canary trial on
/// that member; the router then routes its configured traffic share to
/// the node and auto-promotes or auto-rolls-back on the latency
/// verdict.
fn canary(router: &Router, body: &[u8]) -> HttpResponse {
    let bad = |message: &str| HttpResponse::json(400, error_body(400, "bad_request", message));
    let Ok(text) = std::str::from_utf8(body) else { return bad("body not utf-8") };
    let value = match parse(text) {
        Ok(value) => value,
        Err(e) => return bad(&e),
    };
    let Some(node) = value.get("node").and_then(Json::as_str) else {
        return bad("missing string field `node`");
    };
    if !router.set_canary(node) {
        return HttpResponse::json(
            404,
            error_body(404, "node_not_found", &format!("`{node}` is not a cluster member")),
        );
    }
    HttpResponse::json(
        200,
        Json::obj(vec![
            ("status", Json::Str("canary".to_owned())),
            ("node", Json::Str(node.to_owned())),
        ])
        .to_string(),
    )
}

fn membership_body(router: &Router) -> String {
    let nodes: Vec<Json> = router
        .membership()
        .into_iter()
        .map(|info| {
            Json::obj(vec![
                ("id", Json::Str(info.id)),
                ("addr", Json::Str(info.addr)),
                ("healthy", Json::Bool(info.healthy)),
                ("draining", Json::Bool(info.draining)),
                ("queue_depth", Json::Num(f64::from(info.queue_depth))),
                ("slow_score", Json::Num(f64::from(info.slow_score))),
            ])
        })
        .collect();
    let canary = match router.canary_node() {
        Some(node) => Json::Str(node),
        None => Json::Null,
    };
    Json::obj(vec![
        ("nodes", Json::Arr(nodes)),
        ("canary", canary),
        ("hedge_delay_us", Json::Num(router.hedge_delay().as_micros() as f64)),
    ])
    .to_string()
}

impl RouterServer {
    /// Binds `addr` (port 0 for ephemeral) with default
    /// [`HttpOptions`] and starts accepting on behalf of `router`.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn bind(router: Arc<Router>, addr: &str) -> std::io::Result<RouterServer> {
        Self::bind_with(router, addr, HttpOptions::default())
    }

    /// Binds `addr` with explicit [`HttpOptions`].
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn bind_with(
        router: Arc<Router>,
        addr: &str,
        options: HttpOptions,
    ) -> std::io::Result<RouterServer> {
        let signal = Arc::new(ShutdownSignal::new());
        let handler: Arc<dyn HttpHandler> =
            Arc::new(RouterHandler { router: Arc::clone(&router), signal: Arc::clone(&signal) });
        let listener = HttpListener::bind(addr, options, handler)?;
        Ok(RouterServer { router, listener, signal })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr()
    }

    /// Asks the front to shut down, as `POST /v1/shutdown` does.
    pub fn request_shutdown(&self) {
        self.signal.request();
    }

    /// Blocks until shutdown is requested, then stops the listener and
    /// the router's heartbeat thread.
    pub fn serve_until_shutdown(mut self) {
        self.signal.wait();
        self.teardown();
    }

    fn teardown(&mut self) {
        self.signal.request();
        self.listener.stop();
        self.router.shutdown();
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.teardown();
    }
}
