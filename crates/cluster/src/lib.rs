//! `gobo-cluster`: the sharded multi-node serving tier.
//!
//! One `gobo-serve` process holds what fits in one memory budget and
//! one socket's accept queue. This crate scales the serving stack
//! horizontally while keeping its defining invariant — a routed
//! response's tensor payload is byte-identical to a direct in-process
//! encode — and adds the two properties a single node cannot have:
//! surviving a node loss, and capping tail latency when a node turns
//! slow rather than dead.
//!
//! * [`ring`] — consistent-hash ring with virtual nodes, keyed on the
//!   model identity `name@bits`; membership changes only remap the
//!   departed member's keys, keeping node registries warm;
//! * [`node`] — a `gobo-proto` protocol listener wrapping an
//!   in-process [`gobo_serve::ServeCore`]: encode, heartbeat (load +
//!   model residency), and graceful drain;
//! * [`router`] — replica selection by health and load, heartbeat
//!   membership with mark-dead/mark-alive, failover on retryable
//!   errors, hedged requests (a backup fires after a p95-derived
//!   delay, the first answer wins, the loser is cancelled), and canary
//!   trials: a designated node receives a configured traffic slice
//!   and is auto-promoted on a clean latency window or auto-demoted on
//!   an attempt failure or p95 regression;
//! * [`metrics`] — `gobo_cluster_*` Prometheus counters and the
//!   route-latency histogram;
//! * [`http`] — the router's HTTP front door, speaking the exact JSON
//!   dialect of a single node plus `GET /v1/cluster`.
//!
//! Failpoints: `cluster.route`, `cluster.node.recv`,
//! `cluster.heartbeat` (plus `proto.frame.parse` in the wire layer).
//! Spans: `gobo.cluster.route`, `gobo.cluster.canary`, `gobo.hedge`.

#![deny(missing_docs)]

pub mod http;
pub mod metrics;
pub mod node;
pub mod ring;
pub mod router;

pub use http::RouterServer;
pub use metrics::{ClusterMetrics, NodeHealthSample};
pub use node::ClusterNode;
pub use ring::Ring;
pub use router::{NodeInfo, NodeState, Router, RouterConfig, RouterError};
