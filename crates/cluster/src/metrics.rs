//! Cluster-tier Prometheus metrics: routing volume, hedging, and
//! per-node membership health.
//!
//! Rendered separately from the per-node serve metrics — the router is
//! its own process with its own `/metrics` endpoint. Naming follows
//! the workspace rules enforced by `gobo lint`: `gobo_` prefix,
//! counters end in `_total`, histograms in `_us`.

use std::sync::atomic::{AtomicU64, Ordering};

use gobo_obs::hist::{escape_label, Histogram};

/// Counters, gauges, and the route-latency histogram of one router.
#[derive(Debug, Default)]
pub struct ClusterMetrics {
    /// Requests routed (one per client request, however many attempts).
    pub requests: AtomicU64,
    /// Requests that ultimately failed.
    pub errors: AtomicU64,
    /// Hedge backups fired after the hedge delay elapsed.
    pub hedge_fires: AtomicU64,
    /// Requests won by a hedge backup rather than the primary.
    pub hedge_wins: AtomicU64,
    /// Failovers to the next replica after a retryable failure.
    pub failovers: AtomicU64,
    /// Consistent-hash ring rebuilds (membership/health transitions).
    pub ring_rebuilds: AtomicU64,
    /// Heartbeats sent.
    pub heartbeats: AtomicU64,
    /// Heartbeats that failed or timed out.
    pub heartbeat_failures: AtomicU64,
    /// Healthy→dead transitions.
    pub mark_dead: AtomicU64,
    /// Dead→healthy transitions.
    pub mark_alive: AtomicU64,
    /// Requests routed preferentially to a node under canary trial.
    pub canary_requests: AtomicU64,
    /// Canary trials that ended in promotion (clean window).
    pub canary_promotions: AtomicU64,
    /// Canary trials rolled back (attempt failure or p95 regression).
    pub canary_rollbacks: AtomicU64,
    /// End-to-end route latency of successful requests, microseconds.
    pub route_us: Histogram,
}

/// One row of the per-node health block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeHealthSample {
    /// Logical node id (stable across restarts; not the address).
    pub id: String,
    /// Whether the router currently considers the node healthy.
    pub healthy: bool,
    /// Whether the node reported draining in its last heartbeat ack.
    pub draining: bool,
    /// Queue depth from the last heartbeat ack.
    pub queue_depth: u64,
}

impl ClusterMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders the Prometheus text exposition. `nodes` supplies the
    /// per-node health block (labelled by logical id, never by
    /// address, so scrapes stay stable across port changes).
    pub fn render(&self, nodes: &[NodeHealthSample]) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = write!(
                out,
                "# HELP gobo_cluster_{name} {help}\n# TYPE gobo_cluster_{name} counter\ngobo_cluster_{name} {value}\n"
            );
        };
        counter("requests_total", "requests routed", self.requests.load(Ordering::Relaxed));
        counter(
            "errors_total",
            "requests that ultimately failed",
            self.errors.load(Ordering::Relaxed),
        );
        counter(
            "hedge_fires_total",
            "hedge backups fired after the hedge delay",
            self.hedge_fires.load(Ordering::Relaxed),
        );
        counter(
            "hedge_wins_total",
            "requests won by a hedge backup",
            self.hedge_wins.load(Ordering::Relaxed),
        );
        counter(
            "failovers_total",
            "failovers to the next replica after a retryable failure",
            self.failovers.load(Ordering::Relaxed),
        );
        counter(
            "ring_rebuilds_total",
            "consistent-hash ring rebuilds",
            self.ring_rebuilds.load(Ordering::Relaxed),
        );
        counter("heartbeats_total", "heartbeats sent", self.heartbeats.load(Ordering::Relaxed));
        counter(
            "heartbeat_failures_total",
            "heartbeats that failed or timed out",
            self.heartbeat_failures.load(Ordering::Relaxed),
        );
        counter(
            "mark_dead_total",
            "healthy-to-dead membership transitions",
            self.mark_dead.load(Ordering::Relaxed),
        );
        counter(
            "mark_alive_total",
            "dead-to-healthy membership transitions",
            self.mark_alive.load(Ordering::Relaxed),
        );
        counter(
            "canary_requests_total",
            "requests routed preferentially to a node under canary trial",
            self.canary_requests.load(Ordering::Relaxed),
        );
        counter(
            "canary_promotions_total",
            "canary trials that ended in promotion",
            self.canary_promotions.load(Ordering::Relaxed),
        );
        counter(
            "canary_rollbacks_total",
            "canary trials rolled back on failure or p95 regression",
            self.canary_rollbacks.load(Ordering::Relaxed),
        );

        let healthy = nodes.iter().filter(|n| n.healthy).count() as u64;
        let down = nodes.iter().filter(|n| !n.healthy).count() as u64;
        let draining = nodes.iter().filter(|n| n.draining).count() as u64;
        let mut gauge = |name: &str, help: &str, value: u64| {
            let _ = write!(
                out,
                "# HELP gobo_cluster_{name} {help}\n# TYPE gobo_cluster_{name} gauge\ngobo_cluster_{name} {value}\n"
            );
        };
        gauge("nodes", "cluster members known to the router", nodes.len() as u64);
        gauge("nodes_healthy", "members currently marked healthy", healthy);
        gauge("node_down", "members currently marked dead", down);
        gauge("nodes_draining", "members reporting draining", draining);

        let _ = write!(
            out,
            "# HELP gobo_cluster_node_healthy per-node health (1 healthy, 0 dead)\n# TYPE gobo_cluster_node_healthy gauge\n"
        );
        for node in nodes {
            let _ = writeln!(
                out,
                "gobo_cluster_node_healthy{{node=\"{}\"}} {}",
                escape_label(&node.id),
                u64::from(node.healthy)
            );
        }
        let _ = write!(
            out,
            "# HELP gobo_cluster_node_queue_depth per-node queue depth from the last heartbeat\n# TYPE gobo_cluster_node_queue_depth gauge\n"
        );
        for node in nodes {
            let _ = writeln!(
                out,
                "gobo_cluster_node_queue_depth{{node=\"{}\"}} {}",
                escape_label(&node.id),
                node.queue_depth
            );
        }

        self.route_us.render_prometheus(
            "gobo_cluster_route_us",
            "end-to-end routed request latency (us)",
            &[],
            &mut out,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_all_families_and_labels() {
        let m = ClusterMetrics::new();
        m.requests.fetch_add(10, Ordering::Relaxed);
        m.hedge_fires.fetch_add(2, Ordering::Relaxed);
        m.canary_rollbacks.fetch_add(1, Ordering::Relaxed);
        m.route_us.observe(1500);
        let nodes = vec![
            NodeHealthSample { id: "n1".into(), healthy: true, draining: false, queue_depth: 3 },
            NodeHealthSample { id: "n2".into(), healthy: false, draining: false, queue_depth: 0 },
        ];
        let text = m.render(&nodes);
        assert!(text.contains("gobo_cluster_requests_total 10"), "{text}");
        assert!(text.contains("gobo_cluster_hedge_fires_total 2"), "{text}");
        assert!(text.contains("gobo_cluster_canary_requests_total 0"), "{text}");
        assert!(text.contains("gobo_cluster_canary_rollbacks_total 1"), "{text}");
        assert!(text.contains("gobo_cluster_node_down 1"), "{text}");
        assert!(text.contains("gobo_cluster_node_healthy{node=\"n1\"} 1"), "{text}");
        assert!(text.contains("gobo_cluster_node_healthy{node=\"n2\"} 0"), "{text}");
        assert!(text.contains("gobo_cluster_node_queue_depth{node=\"n1\"} 3"), "{text}");
        assert!(text.contains("gobo_cluster_route_us_count 1"), "{text}");
        // Every TYPE line is gobo_-prefixed (the lint naming rule).
        for line in text.lines().filter(|l| l.starts_with("# TYPE")) {
            assert!(line.contains("gobo_cluster_"), "{line}");
        }
    }
}
