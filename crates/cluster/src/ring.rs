//! Consistent-hash ring with virtual nodes.
//!
//! Keys are model identities (`name@bits`); members are logical node
//! ids. Each member is hashed onto `virtual_nodes` points of a 64-bit
//! circle, and a key's replicas are the first `rf` *distinct* members
//! clockwise from the key's hash. Virtual nodes smooth the load split,
//! and consistency means membership changes only remap the keys that
//! actually touched the departed/arrived member — the property that
//! keeps registries warm across a rebalance.

/// A consistent-hash ring over logical node ids.
#[derive(Debug, Clone, Default)]
pub struct Ring {
    /// `(hash, member index)` sorted by hash.
    points: Vec<(u64, usize)>,
    members: Vec<String>,
}

/// FNV-1a 64-bit, finished with a SplitMix64 mix — cheap, stable
/// across runs (unlike `DefaultHasher`), and well-dispersed even for
/// short, similar keys like `n1`/`n2`.
fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // SplitMix64 finalizer.
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

impl Ring {
    /// Builds a ring of `members`, each owning `virtual_nodes` points.
    pub fn new(members: &[String], virtual_nodes: usize) -> Ring {
        let vnodes = virtual_nodes.max(1);
        let mut points = Vec::with_capacity(members.len() * vnodes);
        for (index, member) in members.iter().enumerate() {
            for v in 0..vnodes {
                points.push((hash_str(&format!("{member}#{v}")), index));
            }
        }
        points.sort_unstable();
        Ring { points, members: members.to_vec() }
    }

    /// Number of distinct members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The first `rf` distinct members clockwise from `key`'s hash.
    /// Fewer are returned when the ring has fewer members than `rf`.
    pub fn replicas(&self, key: &str, rf: usize) -> Vec<&str> {
        if self.points.is_empty() || rf == 0 {
            return Vec::new();
        }
        let target = hash_str(key);
        let start = self.points.partition_point(|(h, _)| *h < target);
        let mut out: Vec<&str> = Vec::with_capacity(rf.min(self.members.len()));
        let mut seen = vec![false; self.members.len()];
        for offset in 0..self.points.len() {
            let idx = (start + offset) % self.points.len();
            let Some(&(_, member)) = self.points.get(idx) else { continue };
            let Some(flag) = seen.get_mut(member) else { continue };
            if *flag {
                continue;
            }
            *flag = true;
            if let Some(name) = self.members.get(member) {
                out.push(name.as_str());
            }
            if out.len() >= rf.min(self.members.len()) {
                break;
            }
        }
        out
    }

    /// The primary member for `key` (first replica).
    pub fn primary(&self, key: &str) -> Option<&str> {
        self.replicas(key, 1).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn replicas_are_distinct_and_deterministic() {
        let ring = Ring::new(&members(&["n1", "n2", "n3"]), 64);
        for key in ["bert@3b", "bert@4b", "gpt@3b", "tiny@2b"] {
            let a = ring.replicas(key, 2);
            let b = ring.replicas(key, 2);
            assert_eq!(a, b, "deterministic for {key}");
            assert_eq!(a.len(), 2);
            assert_ne!(a[0], a[1], "replicas must be distinct for {key}");
        }
    }

    #[test]
    fn rf_larger_than_membership_returns_all() {
        let ring = Ring::new(&members(&["n1", "n2"]), 16);
        let replicas = ring.replicas("m@3b", 5);
        assert_eq!(replicas.len(), 2);
    }

    #[test]
    fn empty_ring_returns_nothing() {
        let ring = Ring::new(&[], 64);
        assert!(ring.is_empty());
        assert!(ring.replicas("m@3b", 2).is_empty());
        assert!(ring.primary("m@3b").is_none());
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = Ring::new(&members(&["n1", "n2", "n3", "n4"]), 128);
        let mut counts = std::collections::HashMap::new();
        for i in 0..4000 {
            let key = format!("model-{i}@3b");
            let primary = ring.primary(&key).unwrap().to_string();
            *counts.entry(primary).or_insert(0usize) += 1;
        }
        for (node, count) in &counts {
            // Perfect balance is 1000; accept a 2x band.
            assert!((500..=2000).contains(count), "{node} owns {count} of 4000 keys");
        }
    }

    #[test]
    fn removing_a_member_only_remaps_its_keys() {
        let all = Ring::new(&members(&["n1", "n2", "n3"]), 128);
        let without = Ring::new(&members(&["n1", "n3"]), 128);
        let mut moved = 0;
        let mut total = 0;
        for i in 0..2000 {
            let key = format!("model-{i}@3b");
            let before = all.primary(&key).unwrap();
            let after = without.primary(&key).unwrap();
            total += 1;
            if before != "n2" {
                // Keys not owned by the removed member must not move.
                assert_eq!(before, after, "{key} moved although its owner survived");
            } else {
                moved += 1;
            }
        }
        assert!(moved > 0, "removed member owned no keys out of {total}");
    }
}
