//! The cluster node: a protocol listener wrapping an in-process
//! [`ServeCore`].
//!
//! A node is the unit of horizontal scale. It answers three things on
//! its TCP port: encode requests (delegated to the serve scheduler,
//! byte-identical to a direct in-process encode), heartbeats (answered
//! with queue depth, drain state, and the registry's model residency),
//! and drain commands (stop accepting encodes, finish what is queued).
//!
//! Two test-only knobs exist for chaos and benchmarking:
//! [`ClusterNode::set_artificial_delay`] slows *this* node's encodes
//! (the `gobo-fault` registry is process-global, so a delay failpoint
//! cannot target one node of an in-process cluster), and
//! [`ClusterNode::set_partitioned`] simulates an asymmetric network
//! partition — frames are read but never answered, which is exactly
//! the failure hedged requests exist for.

use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use gobo_sanitize::SanMutex;
use std::thread::JoinHandle;
use std::time::Duration;

use gobo_proto::frame::{
    read_frame, write_frame, EncodeErrFrame, EncodeOkFrame, EncodeRequestFrame,
    EncodeResponseFrame, Frame, HeartbeatAckFrame, ModelStatusFrame, ProtoError, MAX_PAYLOAD,
};
use gobo_serve::{EncodeRequest, ServeCore, ShutdownSignal};

/// Poll interval of the non-blocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// How long a partitioned connection re-checks its parking condition.
const PARTITION_POLL: Duration = Duration::from_millis(5);

struct NodeShared {
    core: Arc<ServeCore>,
    stop: AtomicBool,
    draining: AtomicBool,
    partitioned: AtomicBool,
    artificial_delay_us: AtomicU64,
    drain_signal: ShutdownSignal,
}

/// Live connections: each worker's join handle plus a tracked clone
/// of its socket, so shutdown can close streams a peer holds open.
type ConnectionSet = Arc<SanMutex<Vec<(JoinHandle<()>, TcpStream)>>>;

/// A running protocol listener over a [`ServeCore`].
pub struct ClusterNode {
    shared: Arc<NodeShared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    connections: ConnectionSet,
}

impl ClusterNode {
    /// Binds `addr` (port 0 for ephemeral) and starts serving the
    /// cluster protocol over `core`.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn start(core: Arc<ServeCore>, addr: &str) -> std::io::Result<ClusterNode> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(NodeShared {
            core,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            partitioned: AtomicBool::new(false),
            artificial_delay_us: AtomicU64::new(0),
            drain_signal: ShutdownSignal::new(),
        });
        let connections: ConnectionSet =
            Arc::new(SanMutex::new("cluster.node.connections", 12, Vec::new()));

        let accept_thread = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new().name("gobo-node-accept".into()).spawn(move || {
                while !shared.stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let tracked = match stream.try_clone() {
                                Ok(clone) => clone,
                                Err(_) => continue,
                            };
                            let shared = Arc::clone(&shared);
                            let handle = std::thread::spawn(move || {
                                let _ = handle_conn(&shared, stream);
                            });
                            let mut conns = connections.lock();
                            conns.retain(|(h, _)| !h.is_finished());
                            conns.push((handle, tracked));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
            })?
        };

        Ok(ClusterNode { shared, local_addr, accept_thread: Some(accept_thread), connections })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Adds a fixed delay to every encode on *this* node — the
    /// slow-replica knob for hedging benchmarks.
    pub fn set_artificial_delay(&self, delay: Duration) {
        self.shared.artificial_delay_us.store(delay.as_micros() as u64, Ordering::Relaxed);
    }

    /// Simulates an asymmetric partition: while set, connections read
    /// frames but never answer, so peers see timeouts instead of
    /// resets.
    pub fn set_partitioned(&self, partitioned: bool) {
        self.shared.partitioned.store(partitioned, Ordering::Release);
    }

    /// Whether a drain has been requested (via frame or locally).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Begins drain locally: new encodes are rejected with
    /// `shutting_down`, heartbeat acks advertise `draining`.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.drain_signal.request();
    }

    /// Blocks until a drain has been requested (by a [`Frame::Drain`]
    /// from the router or [`ClusterNode::begin_drain`]).
    pub fn wait_drain(&self) {
        self.shared.drain_signal.wait();
    }

    /// Hard stop: close the listener, shut down every connection, join
    /// all threads. The serve core is left to the caller (it may be
    /// shared). Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.drain_signal.request();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let conns: Vec<(JoinHandle<()>, TcpStream)> = self.connections.lock().drain(..).collect();
        for (handle, stream) in conns {
            let _ = stream.shutdown(Shutdown::Both);
            let _ = handle.join();
        }
    }
}

impl Drop for ClusterNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_conn(shared: &NodeShared, stream: TcpStream) -> Result<(), ProtoError> {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let mut reader = BufReader::new(stream.try_clone().map_err(ProtoError::Io)?);
    let mut writer = stream;
    loop {
        gobo_sanitize::blocking_io("cluster.node.read_frame");
        let frame = match read_frame(&mut reader, MAX_PAYLOAD)? {
            Some(frame) => frame,
            None => return Ok(()), // peer closed cleanly
        };
        gobo_fault::fail_point!(
            "cluster.node.recv",
            ProtoError::Corrupt("injected cluster.node.recv fault".to_string())
        );
        // Partition simulation: the request was received but the
        // answer never leaves. Park until healed or stopped.
        while shared.partitioned.load(Ordering::Acquire) && !shared.stop.load(Ordering::Acquire) {
            std::thread::sleep(PARTITION_POLL);
        }
        if shared.stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let reply = match frame {
            Frame::EncodeRequest(request) => Some(handle_encode(shared, request)),
            Frame::Heartbeat { seq } => Some(heartbeat_ack(shared, seq)),
            Frame::Drain => {
                shared.draining.store(true, Ordering::Release);
                shared.drain_signal.request();
                Some(Frame::DrainAck)
            }
            // Responses/acks arriving at a node are protocol misuse;
            // drop the connection rather than guess.
            Frame::EncodeResponse(_) | Frame::HeartbeatAck(_) | Frame::DrainAck => None,
        };
        match reply {
            Some(frame) => {
                gobo_sanitize::blocking_io("cluster.node.write_frame");
                write_frame(&mut writer, &frame).map_err(ProtoError::Io)?
            }
            None => {
                return Err(ProtoError::Corrupt("unexpected frame kind for a node".to_string()))
            }
        }
    }
}

fn handle_encode(shared: &NodeShared, request: EncodeRequestFrame) -> Frame {
    let delay_us = shared.artificial_delay_us.load(Ordering::Relaxed);
    if delay_us > 0 {
        std::thread::sleep(Duration::from_micros(delay_us));
    }
    let id = request.id;
    if shared.draining.load(Ordering::Acquire) {
        return Frame::EncodeResponse(EncodeResponseFrame {
            id,
            result: Err(EncodeErrFrame {
                code: "shutting_down".to_string(),
                message: "node is draining".to_string(),
            }),
        });
    }
    let encode = EncodeRequest {
        model: request.model,
        bits: if request.bits == 0 { None } else { Some(request.bits) },
        ids: request.ids.iter().map(|&v| v as usize).collect(),
        type_ids: request.type_ids.iter().map(|&v| v as usize).collect(),
        deadline: if request.deadline_ms == 0 {
            None
        } else {
            Some(Duration::from_millis(request.deadline_ms))
        },
    };
    let result = match shared.core.scheduler().encode_blocking(encode) {
        Ok(response) => Ok(EncodeOkFrame {
            model: response.model.name.clone(),
            bits: response.model.bits,
            dims: response.hidden_dims.iter().map(|&d| d as u32).collect(),
            hidden: response.hidden,
            pooled: response.pooled,
            batch_size: response.batch_size as u32,
            queue_us: response.queue_us,
            compute_us: response.compute_us,
        }),
        Err(e) => Err(EncodeErrFrame { code: e.code().to_string(), message: e.to_string() }),
    };
    Frame::EncodeResponse(EncodeResponseFrame { id, result })
}

fn heartbeat_ack(shared: &NodeShared, seq: u64) -> Frame {
    let models = shared
        .core
        .registry()
        .status()
        .into_iter()
        .map(|status| ModelStatusFrame {
            name: status.key.name,
            bits: status.key.bits,
            resident: status.resident,
            decoded_bytes: status.decoded_bytes as u64,
        })
        .collect();
    Frame::HeartbeatAck(HeartbeatAckFrame {
        seq,
        queue_depth: shared.core.scheduler().queue_depth() as u32,
        draining: shared.draining.load(Ordering::Acquire),
        models,
    })
}
