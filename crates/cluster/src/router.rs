//! The cluster router: consistent-hash sharding, replication, health
//! membership, and hedged requests.
//!
//! Routing is keyed on the model identity `name@bits`, so the same
//! logical model served at several precisions spreads across replicas
//! independently — and a key always lands on the same replica set
//! while membership holds, keeping node registries warm.
//!
//! # Tail latency: hedging plus a passive snitch
//!
//! A request goes to the best replica first (lowest slow-score, then
//! lowest queue depth). If no answer arrives within the hedge delay —
//! configured, or derived from the p95 of the router's own latency
//! histogram — a backup fires to the next replica and the first answer
//! wins; the loser's connection is shut down. Every hedge loss bumps
//! the primary's *slow score*, demoting it in future replica
//! orderings, so a persistently slow node stops being picked first and
//! steady-state latency returns to healthy levels instead of paying
//! the hedge delay forever.
//!
//! # Failure model
//!
//! Transport failures and retryable upstream errors (`queue_full`,
//! `shutting_down`, worker loss) fail over to the next replica;
//! terminal errors (`model_not_found`, `bad_request`,
//! `deadline_exceeded`) return immediately. Health is tracked by
//! heartbeat: `dead_after` consecutive misses mark a node dead (ring
//! rebuild without it), a single success marks it alive again.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;

use gobo_sanitize::{SanMutex, SanRwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gobo_proto::frame::{
    read_frame, write_frame, EncodeErrFrame, EncodeOkFrame, EncodeRequestFrame, Frame,
    HeartbeatAckFrame, MAX_PAYLOAD,
};
use gobo_proto::net::{connect_retry, RetryPolicy};
use gobo_serve::CanaryPolicy;

use crate::metrics::{ClusterMetrics, NodeHealthSample};
use crate::ring::Ring;

/// Router tunables.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Replicas per model key.
    pub replication: usize,
    /// Virtual nodes per member on the hash ring.
    pub virtual_nodes: usize,
    /// Interval between heartbeat rounds.
    pub heartbeat_interval: Duration,
    /// Connect/read timeout of one heartbeat probe.
    pub heartbeat_timeout: Duration,
    /// Consecutive heartbeat misses before a node is marked dead.
    pub dead_after: u32,
    /// Fixed hedge delay; `None` derives it per request from the p95
    /// of the router's route-latency histogram.
    pub hedge_after: Option<Duration>,
    /// Lower bound on the derived hedge delay.
    pub hedge_floor: Duration,
    /// Hedge delay used until the latency histogram has enough
    /// samples to derive a p95.
    pub hedge_initial: Duration,
    /// Overall per-request budget across all attempts.
    pub request_timeout: Duration,
    /// Connect timeout of one encode attempt.
    pub connect_timeout: Duration,
    /// Transient-connect retry policy of one encode attempt.
    pub retry: RetryPolicy,
    /// Canary trial policy: traffic share, window size, and the p95
    /// regression threshold — same semantics as a single node's
    /// in-process canary.
    pub canary: CanaryPolicy,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            replication: 2,
            virtual_nodes: 64,
            heartbeat_interval: Duration::from_millis(500),
            heartbeat_timeout: Duration::from_secs(1),
            dead_after: 3,
            hedge_after: None,
            hedge_floor: Duration::from_millis(2),
            hedge_initial: Duration::from_millis(50),
            request_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(1),
            // No connect retries by default: a dead replica should
            // fail over to the next one immediately, not be retried.
            retry: RetryPolicy::none(),
            canary: CanaryPolicy::default(),
        }
    }
}

/// A canary trial in flight: one node receiving a preferential traffic
/// slice while its latency is judged against the rest of the cluster.
struct CanaryTrial {
    node_id: String,
    ticket: AtomicU64,
    window: SanMutex<TrialWindow>,
}

/// Sliding latency windows of one canary trial.
#[derive(Default)]
struct TrialWindow {
    canary_us: Vec<u64>,
    baseline_us: Vec<u64>,
}

/// Verdict of one canary latency sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrialVerdict {
    Pending,
    Promote,
    Rollback,
}

/// Saturating cap on a node's slow score (how far hedging can demote
/// it); one win at primary walks it back one step.
const SLOW_SCORE_CAP: u32 = 8;
/// Samples the latency histogram needs before it drives hedge timing.
const HEDGE_MIN_SAMPLES: u64 = 20;
/// Multiplier on the p95 when deriving the hedge delay.
const HEDGE_P95_FACTOR: f64 = 1.5;

/// Live state of one member, updated by heartbeats and request
/// outcomes.
#[derive(Debug)]
pub struct NodeState {
    /// Logical id (ring member; stable across address changes).
    pub id: String,
    /// `host:port` of the node's protocol listener.
    pub addr: String,
    healthy: AtomicBool,
    misses: AtomicU32,
    queue_depth: AtomicU32,
    draining: AtomicBool,
    slow_score: AtomicU32,
}

impl NodeState {
    /// Whether the router currently considers this node healthy.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }

    /// Queue depth reported by the node's last heartbeat ack.
    pub fn queue_depth(&self) -> u32 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Current hedging demotion score.
    pub fn slow_score(&self) -> u32 {
        self.slow_score.load(Ordering::Relaxed)
    }

    /// Whether the node reported draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }
}

/// A membership snapshot row for `/v1/cluster`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// Logical id.
    pub id: String,
    /// Protocol address.
    pub addr: String,
    /// Health at snapshot time.
    pub healthy: bool,
    /// Drain state at snapshot time.
    pub draining: bool,
    /// Last reported queue depth.
    pub queue_depth: u32,
    /// Current slow score.
    pub slow_score: u32,
}

/// Routing errors (everything that is not a successful encode).
#[derive(Debug)]
pub enum RouterError {
    /// No replica is available for the key.
    NoReplica(String),
    /// A failpoint injected a routing fault.
    Injected(&'static str),
    /// A node answered with a terminal application error.
    Upstream(EncodeErrFrame),
    /// Every replica failed with a retryable error.
    Exhausted(String),
    /// The request timed out across all attempts.
    Timeout(String),
}

impl RouterError {
    /// Stable machine-readable error code.
    pub fn code(&self) -> &str {
        match self {
            RouterError::NoReplica(_) => "no_healthy_replica",
            RouterError::Injected(_) => "internal",
            RouterError::Upstream(err) => err.code.as_str(),
            RouterError::Exhausted(_) => "all_replicas_failed",
            RouterError::Timeout(_) => "router_timeout",
        }
    }

    /// HTTP status for the router's front door.
    pub fn http_status(&self) -> u16 {
        match self {
            RouterError::NoReplica(_) => 503,
            RouterError::Injected(_) => 500,
            RouterError::Upstream(err) => match err.code.as_str() {
                "model_not_found" => 404,
                "bad_request" | "invalid_input" => 400,
                "body_too_large" => 413,
                "queue_full" => 429,
                "shutting_down" => 503,
                "deadline_exceeded" => 504,
                _ => 500,
            },
            RouterError::Exhausted(_) => 502,
            RouterError::Timeout(_) => 504,
        }
    }
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::NoReplica(key) => write!(f, "no healthy replica for `{key}`"),
            RouterError::Injected(msg) => write!(f, "{msg}"),
            RouterError::Upstream(err) => write!(f, "upstream {}: {}", err.code, err.message),
            RouterError::Exhausted(msg) => write!(f, "all replicas failed: {msg}"),
            RouterError::Timeout(msg) => write!(f, "request timed out: {msg}"),
        }
    }
}

impl std::error::Error for RouterError {}

struct Shared {
    config: RouterConfig,
    nodes: SanRwLock<Vec<Arc<NodeState>>>,
    ring: SanRwLock<Ring>,
    metrics: ClusterMetrics,
    stop: AtomicBool,
    seq: AtomicU64,
    canary: SanRwLock<Option<CanaryTrial>>,
}

/// The consistent-hash router over a set of [`NodeState`] members.
pub struct Router {
    shared: Arc<Shared>,
    heartbeat_thread: SanMutex<Option<JoinHandle<()>>>,
}

enum AttemptError {
    Transport(String),
    App(EncodeErrFrame),
}

fn is_terminal(code: &str) -> bool {
    matches!(
        code,
        "model_not_found"
            | "bad_request"
            | "invalid_input"
            | "deadline_exceeded"
            | "body_too_large"
    )
}

#[track_caller]
fn lock_write<T>(lock: &SanRwLock<T>) -> gobo_sanitize::SanRwLockWriteGuard<'_, T> {
    lock.write()
}

#[track_caller]
fn lock_read<T>(lock: &SanRwLock<T>) -> gobo_sanitize::SanRwLockReadGuard<'_, T> {
    lock.read()
}

impl Router {
    /// A router with no members and no heartbeat thread yet.
    pub fn new(config: RouterConfig) -> Router {
        Router {
            shared: Arc::new(Shared {
                config,
                // Documented acquisition order (ranks enforced by
                // gobo-sanitize): canary(50) -> nodes(52) -> ring(54);
                // the trial window(56) nests under a canary guard.
                // ACQUIRES-AFTER: cluster.router.canary
                nodes: SanRwLock::new("cluster.router.nodes", 52, Vec::new()),
                // ACQUIRES-AFTER: cluster.router.nodes
                ring: SanRwLock::new("cluster.router.ring", 54, Ring::default()),
                metrics: ClusterMetrics::new(),
                stop: AtomicBool::new(false),
                seq: AtomicU64::new(1),
                canary: SanRwLock::new("cluster.router.canary", 50, None),
            }),
            heartbeat_thread: SanMutex::new("cluster.router.heartbeat", 13, None),
        }
    }

    /// Registers a member under a logical `id` (the ring key; keep it
    /// stable across restarts) at protocol address `addr`, and
    /// rebuilds the ring. New members start healthy — the first failed
    /// heartbeats will demote them if they are not.
    pub fn add_node(&self, id: impl Into<String>, addr: impl Into<String>) {
        let state = Arc::new(NodeState {
            id: id.into(),
            addr: addr.into(),
            healthy: AtomicBool::new(true),
            misses: AtomicU32::new(0),
            queue_depth: AtomicU32::new(0),
            draining: AtomicBool::new(false),
            slow_score: AtomicU32::new(0),
        });
        {
            let mut nodes = lock_write(&self.shared.nodes);
            nodes.retain(|n| n.id != state.id);
            nodes.push(state);
        }
        rebuild_ring(&self.shared);
    }

    /// Starts the heartbeat/membership thread. Idempotent.
    pub fn start(&self) {
        let mut guard = self.heartbeat_thread.lock();
        if guard.is_some() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name("gobo-router-heartbeat".into())
            .spawn(move || heartbeat_loop(&shared));
        if let Ok(handle) = handle {
            *guard = Some(handle);
        }
    }

    /// Stops the heartbeat thread. Idempotent.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        let handle = self.heartbeat_thread.lock().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// The router's metrics (rendered by [`Router::render_metrics`]).
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.shared.metrics
    }

    /// Prometheus text exposition including the per-node health block.
    pub fn render_metrics(&self) -> String {
        let samples: Vec<NodeHealthSample> = self
            .membership()
            .into_iter()
            .map(|info| NodeHealthSample {
                id: info.id,
                healthy: info.healthy,
                draining: info.draining,
                queue_depth: u64::from(info.queue_depth),
            })
            .collect();
        self.shared.metrics.render(&samples)
    }

    /// Snapshot of the membership, in registration order.
    pub fn membership(&self) -> Vec<NodeInfo> {
        lock_read(&self.shared.nodes)
            .iter()
            .map(|n| NodeInfo {
                id: n.id.clone(),
                addr: n.addr.clone(),
                healthy: n.is_healthy(),
                draining: n.is_draining(),
                queue_depth: n.queue_depth(),
                slow_score: n.slow_score(),
            })
            .collect()
    }

    /// The ordered replica set the router would use for `model@bits`
    /// right now: ring replicas filtered to live members, best replica
    /// first (lowest slow score, then lowest reported queue depth).
    pub fn replicas_for(&self, model: &str, bits: Option<u8>) -> Vec<Arc<NodeState>> {
        let key = ring_key(model, bits);
        let nodes = lock_read(&self.shared.nodes);
        let ids: Vec<String> = {
            let ring = lock_read(&self.shared.ring);
            ring.replicas(&key, self.shared.config.replication)
                .into_iter()
                .map(str::to_owned)
                .collect()
        };
        let mut ordered: Vec<Arc<NodeState>> = ids
            .iter()
            .filter_map(|id| nodes.iter().find(|n| &n.id == id).cloned())
            .filter(|n| n.is_healthy())
            .collect();
        if ordered.is_empty() {
            // Ring and health can disagree for one heartbeat interval;
            // fall back to any healthy member, then to anyone at all —
            // a doomed attempt still beats instant rejection.
            ordered = nodes.iter().filter(|n| n.is_healthy()).cloned().collect();
            if ordered.is_empty() {
                ordered = nodes.clone();
            }
            ordered.truncate(self.shared.config.replication);
        }
        ordered.sort_by_key(|n| (n.slow_score(), n.queue_depth()));
        ordered
    }

    /// Starts a canary trial on `node_id`: the configured traffic
    /// share is routed to it preferentially while its latency is
    /// judged against the rest of the cluster, ending in an automatic
    /// promotion (trial cleared, node trusted) or rollback (trial
    /// cleared, node demoted to last pick). Replaces any trial in
    /// flight. Returns `false`, starting nothing, when the id is not a
    /// member.
    pub fn set_canary(&self, node_id: &str) -> bool {
        if !lock_read(&self.shared.nodes).iter().any(|n| n.id == node_id) {
            return false;
        }
        *lock_write(&self.shared.canary) = Some(CanaryTrial {
            node_id: node_id.to_owned(),
            ticket: AtomicU64::new(0),
            window: SanMutex::new("cluster.router.trial_window", 56, TrialWindow::default()),
        });
        true
    }

    /// The node under canary trial right now, if any.
    pub fn canary_node(&self) -> Option<String> {
        lock_read(&self.shared.canary).as_ref().map(|t| t.node_id.clone())
    }

    /// Ends any trial in flight without a verdict (no counter moves,
    /// no demotion).
    pub fn clear_canary(&self) {
        *lock_write(&self.shared.canary) = None;
    }

    /// Reorders `ordered` for an active canary trial and says whether
    /// this request is a canary attempt.
    ///
    /// On a canary ticket the trial node moves (or is inserted) at the
    /// front — a canary sees its slice of *all* traffic, not only the
    /// keys that happen to hash onto it. On a baseline ticket the
    /// trial node is steered *away* from the primary slot when a
    /// fallback exists, so the comparison window keeps filling even
    /// when the canary would be the natural first pick.
    fn maybe_front_canary(&self, ordered: &mut Vec<Arc<NodeState>>) -> bool {
        let guard = lock_read(&self.shared.canary);
        let Some(trial) = guard.as_ref() else { return false };
        let pct = u64::from(self.shared.config.canary.traffic_pct.min(100));
        if pct == 0 {
            return false;
        }
        let ticket = trial.ticket.fetch_add(1, Ordering::Relaxed);
        if (ticket * pct) % 100 >= pct {
            if ordered.len() > 1 && ordered.first().is_some_and(|n| n.id == trial.node_id) {
                ordered.swap(0, 1);
            }
            return false;
        }
        match ordered.iter().position(|n| n.id == trial.node_id) {
            Some(0) => true,
            Some(i) => {
                let node = ordered.remove(i);
                ordered.insert(0, node);
                true
            }
            None => {
                let node = lock_read(&self.shared.nodes)
                    .iter()
                    .find(|n| n.id == trial.node_id && n.is_healthy())
                    .cloned();
                match node {
                    Some(node) => {
                        ordered.insert(0, node);
                        true
                    }
                    None => false,
                }
            }
        }
    }

    /// Feeds one successful request latency to the trial window.
    /// Returns a verdict only once the canary window is full.
    fn record_trial_sample(&self, us: u64, canary: bool) -> TrialVerdict {
        let policy = self.shared.config.canary;
        let guard = lock_read(&self.shared.canary);
        let Some(trial) = guard.as_ref() else { return TrialVerdict::Pending };
        let mut window = trial.window.lock();
        let cap = (policy.window as usize).saturating_mul(4).max(1);
        let bucket = if canary { &mut window.canary_us } else { &mut window.baseline_us };
        if bucket.len() >= cap {
            bucket.remove(0);
        }
        bucket.push(us);
        if !canary || window.canary_us.len() < policy.window as usize {
            return TrialVerdict::Pending;
        }
        if window.baseline_us.len() < policy.min_baseline as usize {
            // Too little baseline to judge against — a clean full
            // window promotes outright, same as a single node's
            // in-process canary.
            return TrialVerdict::Promote;
        }
        let canary_p95 = p95(&window.canary_us);
        let baseline_p95 = p95(&window.baseline_us).max(1);
        if canary_p95 > baseline_p95.saturating_mul(u64::from(policy.p95_factor_pct)) / 100 {
            TrialVerdict::Rollback
        } else {
            TrialVerdict::Promote
        }
    }

    /// Applies a trial verdict. Counters move only when the trial was
    /// still in flight — two racing verdicts resolve to one
    /// transition.
    fn apply_verdict(&self, verdict: TrialVerdict) {
        if verdict == TrialVerdict::Pending {
            return;
        }
        let Some(trial) = lock_write(&self.shared.canary).take() else { return };
        match verdict {
            TrialVerdict::Promote => {
                self.shared.metrics.canary_promotions.fetch_add(1, Ordering::Relaxed);
            }
            TrialVerdict::Rollback => {
                self.shared.metrics.canary_rollbacks.fetch_add(1, Ordering::Relaxed);
                // Demote the failed node to last pick; the slow-score
                // walk-back lets it earn its way forward again.
                let nodes = lock_read(&self.shared.nodes);
                if let Some(node) = nodes.iter().find(|n| n.id == trial.node_id) {
                    node.slow_score.store(SLOW_SCORE_CAP, Ordering::Relaxed);
                }
            }
            TrialVerdict::Pending => {}
        }
    }

    /// The hedge delay the router would use right now: the configured
    /// override, or `HEDGE_P95_FACTOR`× the p95 of observed route
    /// latency (floored), or the initial default before enough
    /// samples exist.
    pub fn hedge_delay(&self) -> Duration {
        if let Some(fixed) = self.shared.config.hedge_after {
            return fixed;
        }
        let hist = &self.shared.metrics.route_us;
        if hist.count() < HEDGE_MIN_SAMPLES {
            return self.shared.config.hedge_initial;
        }
        let p95_us = hist.quantile(0.95) * HEDGE_P95_FACTOR;
        Duration::from_micros(p95_us as u64).max(self.shared.config.hedge_floor)
    }

    /// Routes one encode: picks the replica set for `model@bits`,
    /// fires the best replica, hedges to the next after the hedge
    /// delay, fails over on retryable errors, and returns the first
    /// successful answer.
    ///
    /// # Errors
    ///
    /// [`RouterError`] — see the type's docs for the taxonomy.
    pub fn encode(
        &self,
        model: &str,
        bits: Option<u8>,
        ids: &[u32],
        type_ids: &[u32],
        deadline_ms: u64,
    ) -> Result<EncodeOkFrame, RouterError> {
        self.shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let result = self.encode_inner(model, bits, ids, type_ids, deadline_ms);
        if result.is_err() {
            self.shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn encode_inner(
        &self,
        model: &str,
        bits: Option<u8>,
        ids: &[u32],
        type_ids: &[u32],
        deadline_ms: u64,
    ) -> Result<EncodeOkFrame, RouterError> {
        gobo_fault::fail_point!(
            "cluster.route",
            RouterError::Injected("injected cluster.route fault")
        );
        let key = ring_key(model, bits);
        let _span = gobo_obs::span!("gobo.cluster.route", key = key);
        let start = Instant::now();
        let mut ordered = self.replicas_for(model, bits);
        if ordered.is_empty() {
            return Err(RouterError::NoReplica(key));
        }
        let canary_attempt = self.maybe_front_canary(&mut ordered);
        let _canary_span = if canary_attempt {
            self.shared.metrics.canary_requests.fetch_add(1, Ordering::Relaxed);
            ordered.first().map(|n| gobo_obs::span!("gobo.cluster.canary", node = n.id))
        } else {
            None
        };

        let request = EncodeRequestFrame {
            id: self.shared.seq.fetch_add(1, Ordering::Relaxed),
            model: model.to_owned(),
            bits: bits.unwrap_or(0),
            deadline_ms,
            ids: ids.to_vec(),
            type_ids: type_ids.to_vec(),
        };

        let (tx, rx) = mpsc::channel::<(usize, Result<EncodeOkFrame, AttemptError>)>();
        let streams: Arc<SanMutex<Vec<(usize, TcpStream)>>> =
            Arc::new(SanMutex::new("cluster.router.hedge_streams", 58, Vec::new()));
        let config = &self.shared.config;
        let launch = |attempt: usize| {
            let Some(node) = ordered.get(attempt) else { return };
            let addr = node.addr.clone();
            let frame = Frame::EncodeRequest(request.clone());
            let tx = tx.clone();
            let streams = Arc::clone(&streams);
            let connect_timeout = config.connect_timeout;
            let request_timeout = config.request_timeout;
            let retry = config.retry;
            std::thread::spawn(move || {
                let result =
                    attempt_once(&addr, &frame, connect_timeout, request_timeout, &retry, |s| {
                        streams.lock().push((attempt, s));
                    });
                let _ = tx.send((attempt, result));
            });
        };

        launch(0);
        let mut launched = 1usize;
        let mut finished = 0usize;
        let hedge_at = start + self.hedge_delay();
        let mut hedge_idx: Option<usize> = None;
        let deadline = start + config.request_timeout;
        let mut last_err: Option<RouterError> = None;
        let mut canary_failed = false;

        let outcome: Result<(usize, EncodeOkFrame), RouterError> = loop {
            let now = Instant::now();
            if now >= deadline {
                break Err(RouterError::Timeout(format!(
                    "no replica answered `{key}` within {:?}",
                    config.request_timeout
                )));
            }
            let wait_until = if launched < ordered.len() && hedge_idx.is_none() {
                hedge_at.min(deadline)
            } else {
                deadline
            };
            let wait = wait_until.saturating_duration_since(now).max(Duration::from_millis(1));
            match rx.recv_timeout(wait) {
                Ok((idx, Ok(ok))) => break Ok((idx, ok)),
                Ok((_, Err(AttemptError::App(err)))) if is_terminal(&err.code) => {
                    break Err(RouterError::Upstream(err));
                }
                Ok((idx, Err(err))) => {
                    finished += 1;
                    if canary_attempt && idx == 0 {
                        // The canary attempt itself failed with a
                        // retryable/transport error: that is the
                        // node's fault, not the client's — roll the
                        // trial back once the request settles.
                        canary_failed = true;
                    }
                    last_err = Some(match err {
                        AttemptError::Transport(msg) => RouterError::Exhausted(msg),
                        AttemptError::App(app) => {
                            RouterError::Exhausted(format!("{}: {}", app.code, app.message))
                        }
                    });
                    if launched < ordered.len() {
                        self.shared.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                        launch(launched);
                        launched += 1;
                    } else if finished >= launched {
                        break Err(last_err.unwrap_or_else(|| {
                            RouterError::Exhausted("no attempt outcome recorded".to_owned())
                        }));
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if launched < ordered.len() && hedge_idx.is_none() && Instant::now() >= hedge_at
                    {
                        let _hedge_span = gobo_obs::span!("gobo.hedge", key = key);
                        self.shared.metrics.hedge_fires.fetch_add(1, Ordering::Relaxed);
                        hedge_idx = Some(launched);
                        launch(launched);
                        launched += 1;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    break Err(last_err.unwrap_or_else(|| {
                        RouterError::Exhausted("all attempts vanished".to_owned())
                    }));
                }
            }
        };

        // Cancel losers: shutting their sockets down unblocks the
        // attempt threads immediately.
        let winner = match &outcome {
            Ok((idx, _)) => Some(*idx),
            Err(_) => None,
        };
        {
            let streams = streams.lock();
            for (idx, stream) in streams.iter() {
                if Some(*idx) != winner {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
            }
        }

        if canary_failed {
            // Roll back even when the whole request later failed: the
            // trial node already proved unreliable.
            self.apply_verdict(TrialVerdict::Rollback);
        }
        let (winner_idx, ok) = outcome?;
        if winner_idx == 0 {
            // Primary won: walk its slow score back one step.
            if let Some(primary) = ordered.first() {
                let _ =
                    primary.slow_score.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                        if v > 0 {
                            Some(v - 1)
                        } else {
                            None
                        }
                    });
            }
        } else {
            // A backup won: demote the primary so it stops being
            // picked first while it stays slow.
            if let Some(primary) = ordered.first() {
                let _ =
                    primary.slow_score.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                        if v < SLOW_SCORE_CAP {
                            Some(v + 1)
                        } else {
                            None
                        }
                    });
            }
            if hedge_idx == Some(winner_idx) {
                self.shared.metrics.hedge_wins.fetch_add(1, Ordering::Relaxed);
            }
        }
        let elapsed_us = start.elapsed().as_micros() as u64;
        if !canary_failed {
            if canary_attempt {
                // A hedge win over the canary still charges the full
                // elapsed time to the canary window — a slow canary
                // must not hide behind its backups.
                let verdict = self.record_trial_sample(elapsed_us, true);
                self.apply_verdict(verdict);
            } else {
                let _ = self.record_trial_sample(elapsed_us, false);
            }
        }
        self.shared.metrics.route_us.observe(elapsed_us);
        Ok(ok)
    }
}

/// Nearest-rank p95 of a non-empty sample window.
fn p95(samples: &[u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let idx = (sorted.len() * 95 / 100).min(sorted.len() - 1);
    sorted.get(idx).copied().unwrap_or(0)
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn ring_key(model: &str, bits: Option<u8>) -> String {
    format!("{model}@{}b", bits.unwrap_or(0))
}

fn rebuild_ring(shared: &Shared) {
    let members: Vec<String> = {
        let nodes = lock_read(&shared.nodes);
        let live: Vec<String> = nodes
            .iter()
            .filter(|n| n.is_healthy() && !n.is_draining())
            .map(|n| n.id.clone())
            .collect();
        if live.is_empty() {
            // Everything dead or draining: route to all members rather
            // than to nobody.
            nodes.iter().map(|n| n.id.clone()).collect()
        } else {
            live
        }
    };
    let ring = Ring::new(&members, shared.config.virtual_nodes);
    *lock_write(&shared.ring) = ring;
    shared.metrics.ring_rebuilds.fetch_add(1, Ordering::Relaxed);
}

fn attempt_once(
    addr: &str,
    frame: &Frame,
    connect_timeout: Duration,
    request_timeout: Duration,
    retry: &RetryPolicy,
    register: impl FnOnce(TcpStream),
) -> Result<EncodeOkFrame, AttemptError> {
    gobo_sanitize::blocking_io("cluster.router.attempt_connect");
    let stream = connect_retry(addr, connect_timeout, retry)
        .map_err(|e| AttemptError::Transport(format!("connect {addr}: {e}")))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(request_timeout));
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(e) => return Err(AttemptError::Transport(format!("clone {addr}: {e}"))),
    };
    register(match stream.try_clone() {
        Ok(clone) => clone,
        Err(e) => return Err(AttemptError::Transport(format!("clone {addr}: {e}"))),
    });
    use std::io::Write as _;
    write_frame(&mut writer, frame)
        .and_then(|()| writer.flush())
        .map_err(|e| AttemptError::Transport(format!("write {addr}: {e}")))?;
    let mut reader = std::io::BufReader::new(stream);
    match read_frame(&mut reader, MAX_PAYLOAD) {
        Ok(Some(Frame::EncodeResponse(response))) => match response.result {
            Ok(ok) => Ok(ok),
            Err(err) => Err(AttemptError::App(err)),
        },
        Ok(Some(other)) => Err(AttemptError::Transport(format!(
            "unexpected frame kind {} from {addr}",
            other.kind()
        ))),
        Ok(None) => Err(AttemptError::Transport(format!("{addr} closed without answering"))),
        Err(e) => Err(AttemptError::Transport(format!("read {addr}: {e}"))),
    }
}

// ---------------------------------------------------------------------------
// Heartbeats / membership
// ---------------------------------------------------------------------------

fn heartbeat_loop(shared: &Shared) {
    while !shared.stop.load(Ordering::Acquire) {
        // Sleep in short slices so shutdown does not wait a full
        // interval.
        let mut slept = Duration::ZERO;
        while slept < shared.config.heartbeat_interval {
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            let slice = shared
                .config
                .heartbeat_interval
                .saturating_sub(slept)
                .min(Duration::from_millis(20));
            std::thread::sleep(slice);
            slept += slice;
        }
        let nodes: Vec<Arc<NodeState>> = lock_read(&shared.nodes).clone();
        for node in nodes {
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            heartbeat_node(shared, &node);
        }
    }
}

fn heartbeat_node(shared: &Shared, node: &NodeState) {
    shared.metrics.heartbeats.fetch_add(1, Ordering::Relaxed);
    let seq = shared.seq.fetch_add(1, Ordering::Relaxed);
    match heartbeat_once(&node.addr, seq, shared.config.heartbeat_timeout) {
        Ok(ack) => {
            node.misses.store(0, Ordering::Relaxed);
            node.queue_depth.store(ack.queue_depth, Ordering::Relaxed);
            let was_draining = node.draining.swap(ack.draining, Ordering::AcqRel);
            let was_dead = !node.healthy.swap(true, Ordering::AcqRel);
            if was_dead {
                shared.metrics.mark_alive.fetch_add(1, Ordering::Relaxed);
            }
            if was_dead || was_draining != ack.draining {
                rebuild_ring(shared);
            }
        }
        Err(_) => {
            shared.metrics.heartbeat_failures.fetch_add(1, Ordering::Relaxed);
            let misses = node.misses.fetch_add(1, Ordering::Relaxed) + 1;
            if misses >= shared.config.dead_after && node.healthy.swap(false, Ordering::AcqRel) {
                shared.metrics.mark_dead.fetch_add(1, Ordering::Relaxed);
                rebuild_ring(shared);
            }
        }
    }
}

fn heartbeat_once(addr: &str, seq: u64, timeout: Duration) -> Result<HeartbeatAckFrame, String> {
    gobo_fault::fail_point!("cluster.heartbeat", "injected cluster.heartbeat fault".to_owned());
    let sockaddr = {
        use std::net::ToSocketAddrs as _;
        addr.to_socket_addrs()
            .map_err(|e| format!("resolve {addr}: {e}"))?
            .next()
            .ok_or_else(|| format!("{addr} resolved to nothing"))?
    };
    gobo_sanitize::blocking_io("cluster.router.heartbeat_connect");
    let stream = TcpStream::connect_timeout(&sockaddr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    let mut writer = stream.try_clone().map_err(|e| format!("clone {addr}: {e}"))?;
    write_frame(&mut writer, &Frame::Heartbeat { seq })
        .map_err(|e| format!("write {addr}: {e}"))?;
    let mut reader = std::io::BufReader::new(stream);
    match read_frame(&mut reader, MAX_PAYLOAD) {
        Ok(Some(Frame::HeartbeatAck(ack))) if ack.seq == seq => Ok(ack),
        Ok(Some(Frame::HeartbeatAck(ack))) => {
            Err(format!("{addr} acked seq {} for {seq}", ack.seq))
        }
        Ok(Some(other)) => Err(format!("{addr} answered frame kind {}", other.kind())),
        Ok(None) => Err(format!("{addr} closed without answering")),
        Err(e) => Err(format!("read {addr}: {e}")),
    }
}
