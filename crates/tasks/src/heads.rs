//! Task heads: the small FP32 output layers on top of the encoder.
//!
//! Heads stay FP32 throughout — the paper quantizes transformer FC
//! weights and embeddings, not the task-specific output layer.

use gobo_tensor::Tensor;
use gobo_train::ParamSet;
use rand::Rng;

use crate::data::TaskKind;
use crate::error::TaskError;

/// Number of NLI classes (entailment / contradiction / neutral).
pub const NLI_CLASSES: usize = 3;

/// Inserts randomly initialized head parameters for `kind` into a
/// parameter set (names are prefixed `head.`).
pub fn init_head(kind: TaskKind, hidden: usize, params: &mut ParamSet, rng: &mut impl Rng) {
    match kind {
        TaskKind::Nli => {
            params.insert(
                "head.classifier",
                gobo_tensor::rng::xavier_uniform(rng, NLI_CLASSES, hidden),
            );
            params.insert("head.classifier.bias", Tensor::zeros(&[NLI_CLASSES]));
        }
        TaskKind::Sts => {
            params.insert("head.regressor", gobo_tensor::rng::xavier_uniform(rng, 1, hidden));
            params.insert("head.regressor.bias", Tensor::zeros(&[1]));
        }
        TaskKind::Span => {
            params.insert("head.span_start", gobo_tensor::rng::xavier_uniform(rng, 1, hidden));
            params.insert("head.span_start.bias", Tensor::zeros(&[1]));
            params.insert("head.span_end", gobo_tensor::rng::xavier_uniform(rng, 1, hidden));
            params.insert("head.span_end.bias", Tensor::zeros(&[1]));
        }
    }
}

/// FP32 head weights extracted from a trained parameter set, used by
/// the inference-side evaluator.
#[derive(Debug, Clone, PartialEq)]
pub enum HeadWeights {
    /// 3-way classifier over the pooled output.
    Classifier {
        /// `(classes, hidden)` weight.
        weight: Tensor,
        /// `(classes,)` bias.
        bias: Tensor,
    },
    /// Scalar regressor over the pooled output.
    Regressor {
        /// `(1, hidden)` weight.
        weight: Tensor,
        /// `(1,)` bias.
        bias: Tensor,
    },
    /// Start/end span scorers over the hidden states.
    Span {
        /// `(1, hidden)` start scorer.
        start_weight: Tensor,
        /// `(1,)` start bias.
        start_bias: Tensor,
        /// `(1, hidden)` end scorer.
        end_weight: Tensor,
        /// `(1,)` end bias.
        end_bias: Tensor,
    },
}

impl HeadWeights {
    /// Extracts the head for `kind` from a trained parameter set.
    ///
    /// # Errors
    ///
    /// Propagates [`gobo_train::TrainError::UnknownParameter`] (as
    /// [`TaskError::Train`]) when the head was never initialized.
    pub fn extract(kind: TaskKind, params: &ParamSet) -> Result<Self, TaskError> {
        Ok(match kind {
            TaskKind::Nli => HeadWeights::Classifier {
                weight: params.get("head.classifier")?.clone(),
                bias: params.get("head.classifier.bias")?.clone(),
            },
            TaskKind::Sts => HeadWeights::Regressor {
                weight: params.get("head.regressor")?.clone(),
                bias: params.get("head.regressor.bias")?.clone(),
            },
            TaskKind::Span => HeadWeights::Span {
                start_weight: params.get("head.span_start")?.clone(),
                start_bias: params.get("head.span_start.bias")?.clone(),
                end_weight: params.get("head.span_end")?.clone(),
                end_bias: params.get("head.span_end.bias")?.clone(),
            },
        })
    }

    /// The task kind this head belongs to.
    pub fn kind(&self) -> TaskKind {
        match self {
            HeadWeights::Classifier { .. } => TaskKind::Nli,
            HeadWeights::Regressor { .. } => TaskKind::Sts,
            HeadWeights::Span { .. } => TaskKind::Span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn init_and_extract_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [TaskKind::Nli, TaskKind::Sts, TaskKind::Span] {
            let mut p = ParamSet::new();
            init_head(kind, 16, &mut p, &mut rng);
            let head = HeadWeights::extract(kind, &p).unwrap();
            assert_eq!(head.kind(), kind);
        }
    }

    #[test]
    fn classifier_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = ParamSet::new();
        init_head(TaskKind::Nli, 8, &mut p, &mut rng);
        assert_eq!(p.get("head.classifier").unwrap().dims(), &[NLI_CLASSES, 8]);
        assert_eq!(p.get("head.classifier.bias").unwrap().dims(), &[NLI_CLASSES]);
    }

    #[test]
    fn extract_missing_head_fails() {
        let p = ParamSet::new();
        assert!(HeadWeights::extract(TaskKind::Nli, &p).is_err());
        assert!(HeadWeights::extract(TaskKind::Span, &p).is_err());
    }
}
