//! Export: trained parameters → inference `TransformerModel`.
//!
//! The trained [`gobo_train::ParamSet`] uses the same layer names as
//! `gobo-model`, so export is a name-for-name transfer. The resulting
//! model is the FP32 baseline the quantization experiments start from,
//! exactly like the fine-tuned checkpoints the paper downloads.

use gobo_model::config::ModelConfig;
use gobo_model::TransformerModel;
use gobo_train::layers::EncoderDims;
use gobo_train::ParamSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::TaskError;

/// Builds a `ModelConfig` mirroring a trainable encoder's geometry.
pub fn config_for_dims(name: &str, dims: &EncoderDims) -> ModelConfig {
    ModelConfig {
        name: name.into(),
        encoder_layers: dims.layers,
        hidden: dims.hidden,
        intermediate: dims.intermediate,
        heads: dims.heads,
        vocab: dims.vocab,
        max_position: dims.max_position,
        type_vocab: dims.type_vocab,
        has_pooler: true,
    }
}

/// Transfers a trained parameter set into a fresh inference model.
///
/// Head parameters (`head.*`) are not part of the encoder and stay in
/// the parameter set; everything else (FC weights, embeddings, biases,
/// LayerNorms) is copied by name.
///
/// # Errors
///
/// Propagates model-construction and name/shape mismatches.
pub fn to_transformer_model(
    name: &str,
    dims: &EncoderDims,
    params: &ParamSet,
) -> Result<TransformerModel, TaskError> {
    let config = config_for_dims(name, dims);
    // Seed is irrelevant: every parameter is overwritten below.
    let mut model = TransformerModel::new(config, &mut StdRng::seed_from_u64(0))?;
    for (pname, tensor) in params.iter() {
        if pname.starts_with("head.") {
            continue;
        }
        if pname.ends_with(".bias") || pname.contains(".ln.") {
            model.set_aux(pname, tensor.clone())?;
        } else {
            model.set_weight(pname, tensor.clone())?;
        }
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gobo_train::layers::init_encoder_params;

    fn dims() -> EncoderDims {
        EncoderDims {
            layers: 1,
            hidden: 16,
            heads: 2,
            intermediate: 32,
            vocab: 30,
            max_position: 8,
            type_vocab: 2,
        }
    }

    #[test]
    fn exported_model_matches_trained_forward() {
        // The tape forward and the inference forward must agree on the
        // same parameters — this is the keystone of the whole pipeline.
        let d = dims();
        let mut rng = StdRng::seed_from_u64(5);
        let params = init_encoder_params(&d, &mut rng).unwrap();
        let model = to_transformer_model("Tiny", &d, &params).unwrap();

        let ids = [1usize, 5, 9, 3];
        let type_ids = [0usize, 0, 1, 1];

        // Tape forward.
        let mut graph = gobo_train::Graph::new();
        let bound = gobo_train::params::BoundParams::bind(&mut graph, &params);
        let out =
            gobo_train::layers::encoder_forward(&mut graph, &bound, &d, &ids, &type_ids).unwrap();
        let tape_hidden = graph.value(out.hidden).clone();
        let tape_pooled = graph.value(out.pooled).clone();

        // Inference forward.
        let inf = model.encode(&ids, &type_ids).unwrap();

        for (a, b) in tape_hidden.as_slice().iter().zip(inf.hidden.as_slice()) {
            assert!((a - b).abs() < 1e-4, "hidden mismatch: {a} vs {b}");
        }
        let pooled = inf.pooled.unwrap();
        for (a, b) in tape_pooled.as_slice().iter().zip(pooled.as_slice()) {
            assert!((a - b).abs() < 1e-4, "pooled mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn head_params_are_skipped() {
        let d = dims();
        let mut rng = StdRng::seed_from_u64(6);
        let mut params = init_encoder_params(&d, &mut rng).unwrap();
        crate::heads::init_head(crate::data::TaskKind::Nli, d.hidden, &mut params, &mut rng);
        let model = to_transformer_model("Tiny", &d, &params).unwrap();
        assert!(model.weight("head.classifier").is_err());
    }

    #[test]
    fn config_mirrors_dims() {
        let d = dims();
        let c = config_for_dims("X", &d);
        assert_eq!(c.encoder_layers, d.layers);
        assert_eq!(c.hidden, d.hidden);
        assert_eq!(c.vocab, d.vocab);
        assert!(c.validate().is_ok());
    }
}
