//! Fine-tuning loop for the tiny encoders.

use gobo_train::layers::{encoder_forward, init_encoder_params, EncoderDims};
use gobo_train::params::BoundParams;
use gobo_train::{Adam, Graph, ParamSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::data::{Example, Label, TaskKind};
use crate::error::TaskError;
use crate::heads::init_head;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerOptions {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed (initialization and shuffling).
    pub seed: u64,
}

impl Default for TrainerOptions {
    fn default() -> Self {
        TrainerOptions { epochs: 5, learning_rate: 3e-4, seed: 0 }
    }
}

/// A trained encoder + task head, ready for export and evaluation.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// All trained parameters (encoder + `head.*`).
    pub params: ParamSet,
    /// The encoder geometry.
    pub dims: EncoderDims,
    /// The task the head was trained for.
    pub kind: TaskKind,
    /// Mean training loss of the final epoch.
    pub final_loss: f32,
}

/// Trains a tiny encoder with a task head on a synthetic dataset.
///
/// # Errors
///
/// Returns [`TaskError::EmptyDataset`] for an empty dataset,
/// [`TaskError::LabelKindMismatch`] when an example's label does not
/// match `kind`, and propagates training failures.
pub fn train(
    kind: TaskKind,
    dims: &EncoderDims,
    dataset: &[Example],
    options: &TrainerOptions,
) -> Result<TrainedModel, TaskError> {
    if dataset.is_empty() {
        return Err(TaskError::EmptyDataset);
    }
    check_labels(kind, dataset)?;
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut params = init_encoder_params(dims, &mut rng)?;
    init_head(kind, dims.hidden, &mut params, &mut rng);
    let mut adam = Adam::new(options.learning_rate)?.with_clip_norm(1.0)?;

    let mut order: Vec<usize> = (0..dataset.len()).collect();
    let mut final_loss = f32::INFINITY;
    for _ in 0..options.epochs.max(1) {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        for &i in &order {
            let example = &dataset[i];
            let mut graph = Graph::new();
            let bound = BoundParams::bind(&mut graph, &params);
            let loss = example_loss(kind, dims, &mut graph, &bound, example)?;
            epoch_loss += graph.value(loss).as_slice()[0];
            let grads = graph.backward(loss)?;
            adam.step(&mut params, bound.named_gradients(&grads))?;
        }
        final_loss = epoch_loss / dataset.len() as f32;
    }
    Ok(TrainedModel { params, dims: *dims, kind, final_loss })
}

/// Computes the mean loss of a parameter set over a dataset without
/// updating anything (used by tests and for reporting).
///
/// # Errors
///
/// Same conditions as [`train`].
pub fn evaluate_loss(
    kind: TaskKind,
    dims: &EncoderDims,
    params: &ParamSet,
    dataset: &[Example],
) -> Result<f32, TaskError> {
    if dataset.is_empty() {
        return Err(TaskError::EmptyDataset);
    }
    check_labels(kind, dataset)?;
    let mut total = 0.0f32;
    for example in dataset {
        let mut graph = Graph::new();
        let bound = BoundParams::bind(&mut graph, params);
        let loss = example_loss(kind, dims, &mut graph, &bound, example)?;
        total += graph.value(loss).as_slice()[0];
    }
    Ok(total / dataset.len() as f32)
}

fn check_labels(kind: TaskKind, dataset: &[Example]) -> Result<(), TaskError> {
    let ok = dataset.iter().all(|e| {
        matches!(
            (kind, &e.label),
            (TaskKind::Nli, Label::Class(_))
                | (TaskKind::Sts, Label::Score(_))
                | (TaskKind::Span, Label::Span { .. })
        )
    });
    if ok {
        Ok(())
    } else {
        Err(TaskError::LabelKindMismatch)
    }
}

/// Builds the forward pass + loss for one example on the tape.
fn example_loss(
    kind: TaskKind,
    dims: &EncoderDims,
    graph: &mut Graph,
    bound: &BoundParams,
    example: &Example,
) -> Result<gobo_train::VarId, TaskError> {
    let out = encoder_forward(graph, bound, dims, &example.ids, &example.type_ids)?;
    let loss = match (kind, &example.label) {
        (TaskKind::Nli, Label::Class(c)) => {
            let w = bound.var("head.classifier")?;
            let b = bound.var("head.classifier.bias")?;
            let logits = graph.matmul_nt(out.pooled, w)?;
            let logits = graph.add_bias(logits, b)?;
            graph.cross_entropy(logits, &[*c])?
        }
        (TaskKind::Sts, Label::Score(s)) => {
            let w = bound.var("head.regressor")?;
            let b = bound.var("head.regressor.bias")?;
            let pred = graph.matmul_nt(out.pooled, w)?;
            let pred = graph.add_bias(pred, b)?;
            // Train against the score normalized to [0, 1].
            let target = graph.constant(
                gobo_tensor::Tensor::from_vec(vec![s / 5.0], &[1, 1])
                    .map_err(gobo_train::TrainError::from)?,
            );
            graph.mse(pred, target)?
        }
        (TaskKind::Span, Label::Span { start, end }) => {
            let ws = bound.var("head.span_start")?;
            let bs = bound.var("head.span_start.bias")?;
            let we = bound.var("head.span_end")?;
            let be = bound.var("head.span_end.bias")?;
            let seq = example.ids.len();
            let s_logits = graph.matmul_nt(out.hidden, ws)?;
            let s_logits = graph.add_bias(s_logits, bs)?;
            let s_logits = graph.reshape(s_logits, &[1, seq])?;
            let e_logits = graph.matmul_nt(out.hidden, we)?;
            let e_logits = graph.add_bias(e_logits, be)?;
            let e_logits = graph.reshape(e_logits, &[1, seq])?;
            let ls = graph.cross_entropy(s_logits, &[*start])?;
            let le = graph.cross_entropy(e_logits, &[*end])?;
            let sum = graph.add(ls, le)?;
            graph.scale(sum, 0.5)
        }
        _ => return Err(TaskError::LabelKindMismatch),
    };
    Ok(loss)
}

/// The standard tiny geometry used across the accuracy experiments: a
/// 2-layer, 48-wide encoder (heads of 12, mirroring BERT's ratio).
pub fn tiny_dims(vocab: usize, max_position: usize) -> EncoderDims {
    EncoderDims {
        layers: 2,
        hidden: 48,
        heads: 4,
        intermediate: 192,
        vocab,
        max_position,
        type_vocab: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{nli, span, sts, TaskSpec};

    fn spec() -> TaskSpec {
        TaskSpec::small(62)
    }

    fn dims(spec: &TaskSpec) -> EncoderDims {
        EncoderDims {
            layers: 1,
            hidden: 24,
            heads: 2,
            intermediate: 48,
            vocab: spec.vocab,
            max_position: 16,
            type_vocab: 2,
        }
    }

    #[test]
    fn training_reduces_nli_loss() {
        let s = spec();
        let d = dims(&s);
        let data = nli(&s, 48, &mut StdRng::seed_from_u64(1)).unwrap();
        let init = {
            let mut rng = StdRng::seed_from_u64(0);
            let mut p = init_encoder_params(&d, &mut rng).unwrap();
            init_head(TaskKind::Nli, d.hidden, &mut p, &mut rng);
            evaluate_loss(TaskKind::Nli, &d, &p, &data).unwrap()
        };
        let trained = train(
            TaskKind::Nli,
            &d,
            &data,
            &TrainerOptions { epochs: 3, learning_rate: 3e-4, seed: 0 },
        )
        .unwrap();
        let after = evaluate_loss(TaskKind::Nli, &d, &trained.params, &data).unwrap();
        assert!(after < init * 0.9, "loss {init} -> {after}");
        assert!(trained.final_loss.is_finite());
    }

    #[test]
    fn training_reduces_sts_loss() {
        let s = spec();
        let d = dims(&s);
        let data = sts(&s, 36, &mut StdRng::seed_from_u64(2)).unwrap();
        let trained = train(
            TaskKind::Sts,
            &d,
            &data,
            &TrainerOptions { epochs: 3, learning_rate: 3e-4, seed: 0 },
        )
        .unwrap();
        let after = evaluate_loss(TaskKind::Sts, &d, &trained.params, &data).unwrap();
        // MSE on [0,1]-normalized targets for a random guesser is ~0.1+;
        // two epochs should be well under that.
        assert!(after < 0.1, "sts loss {after}");
    }

    #[test]
    fn training_reduces_span_loss() {
        let s = spec();
        let d = dims(&s);
        let data = span(&s, 36, &mut StdRng::seed_from_u64(3)).unwrap();
        let init = {
            let mut rng = StdRng::seed_from_u64(0);
            let mut p = init_encoder_params(&d, &mut rng).unwrap();
            init_head(TaskKind::Span, d.hidden, &mut p, &mut rng);
            evaluate_loss(TaskKind::Span, &d, &p, &data).unwrap()
        };
        let trained = train(
            TaskKind::Span,
            &d,
            &data,
            &TrainerOptions { epochs: 3, learning_rate: 3e-4, seed: 0 },
        )
        .unwrap();
        let after = evaluate_loss(TaskKind::Span, &d, &trained.params, &data).unwrap();
        assert!(after < init, "loss {init} -> {after}");
    }

    #[test]
    fn rejects_mismatched_labels() {
        let s = spec();
        let d = dims(&s);
        let data = nli(&s, 6, &mut StdRng::seed_from_u64(4)).unwrap();
        assert!(matches!(
            train(TaskKind::Sts, &d, &data, &TrainerOptions::default()),
            Err(TaskError::LabelKindMismatch)
        ));
        assert!(matches!(
            train(TaskKind::Nli, &d, &[], &TrainerOptions::default()),
            Err(TaskError::EmptyDataset)
        ));
    }

    #[test]
    fn tiny_dims_are_valid() {
        assert!(tiny_dims(62, 16).validate().is_ok());
    }
}
