//! Synthetic dataset generators.
//!
//! All three tasks share a latent "topic cluster" structure over the
//! content vocabulary: tokens `2..vocab` are split into
//! [`TaskSpec::clusters`] equal groups. Relations between clusters
//! (same / opposite / unrelated, or degree of overlap) define the
//! labels, giving tiny encoders a genuinely learnable signal with the
//! same output structure as the paper's tasks.

use rand::Rng;

use crate::error::TaskError;

/// Token id reserved for the `[CLS]` marker.
pub const CLS: usize = 0;
/// Token id reserved for the `[SEP]` marker.
pub const SEP: usize = 1;
/// First content token id.
pub const FIRST_CONTENT: usize = 2;

/// Which synthetic task a dataset belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// MNLI-like 3-way natural-language inference (metric: accuracy).
    Nli,
    /// STS-B-like graded similarity (metric: Spearman).
    Sts,
    /// SQuAD-like span extraction (metric: token F1).
    Span,
}

impl TaskKind {
    /// The paper task this synthetic stands in for.
    pub fn paper_name(&self) -> &'static str {
        match self {
            TaskKind::Nli => "MNLI",
            TaskKind::Sts => "STS-B",
            TaskKind::Span => "SQuAD v1.1",
        }
    }
}

/// Gold label of one example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Label {
    /// NLI class: 0 = entailment, 1 = contradiction, 2 = neutral.
    Class(usize),
    /// Similarity score in `[0, 5]`.
    Score(f32),
    /// Answer span `[start, end]` (inclusive token positions).
    Span {
        /// First answer position.
        start: usize,
        /// Last answer position (inclusive).
        end: usize,
    },
}

impl Label {
    /// The NLI class this label carries.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::LabelKindMismatch`] for non-class labels.
    pub fn as_class(&self) -> Result<usize, TaskError> {
        match *self {
            Label::Class(c) => Ok(c),
            _ => Err(TaskError::LabelKindMismatch),
        }
    }

    /// The similarity score this label carries.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::LabelKindMismatch`] for non-score labels.
    pub fn as_score(&self) -> Result<f32, TaskError> {
        match *self {
            Label::Score(s) => Ok(s),
            _ => Err(TaskError::LabelKindMismatch),
        }
    }

    /// The `(start, end)` answer span this label carries.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::LabelKindMismatch`] for non-span labels.
    pub fn as_span(&self) -> Result<(usize, usize), TaskError> {
        match *self {
            Label::Span { start, end } => Ok((start, end)),
            _ => Err(TaskError::LabelKindMismatch),
        }
    }
}

/// One tokenized example.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Token ids, starting with `[CLS]`.
    pub ids: Vec<usize>,
    /// Segment ids (0 = first sentence, 1 = second).
    pub type_ids: Vec<usize>,
    /// Gold label.
    pub label: Label,
}

/// Generation parameters shared by the three tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    /// Model vocabulary size (content tokens are `2..vocab`).
    pub vocab: usize,
    /// Number of latent topic clusters (must be even and ≥ 4).
    pub clusters: usize,
    /// Tokens per sentence side.
    pub sentence_len: usize,
    /// Probability that each content token is replaced by a uniformly
    /// random content token *after* the label is fixed. Noise keeps
    /// labels valid but dilutes the evidence, so models operate with
    /// realistic (non-saturated) margins — which is what makes them
    /// sensitive to quantization, as real GLUE models are.
    pub noise: f32,
}

impl TaskSpec {
    /// A spec sized for the tiny trainable models: 6 clusters, 5 tokens
    /// per side, no noise.
    pub fn small(vocab: usize) -> Self {
        TaskSpec { vocab, clusters: 6, sentence_len: 5, noise: 0.0 }
    }

    /// Returns the spec with token-replacement noise.
    pub fn with_noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidParameter`] for inconsistent fields.
    pub fn validate(&self) -> Result<(), TaskError> {
        if self.clusters < 4 || !self.clusters.is_multiple_of(2) {
            return Err(TaskError::InvalidParameter { name: "clusters" });
        }
        if self.sentence_len == 0 {
            return Err(TaskError::InvalidParameter { name: "sentence_len" });
        }
        if self.content_tokens() < self.clusters * 2 {
            return Err(TaskError::InvalidParameter { name: "vocab" });
        }
        if !(0.0..=1.0).contains(&self.noise) {
            return Err(TaskError::InvalidParameter { name: "noise" });
        }
        Ok(())
    }

    /// Replaces each element with a random content token with
    /// probability `self.noise`. `forbidden` tokens are never produced
    /// (used by the span task to avoid forging answer tokens).
    fn corrupt(&self, rng: &mut impl Rng, tokens: &mut [usize], forbidden: Option<usize>) {
        if self.noise <= 0.0 {
            return;
        }
        for t in tokens.iter_mut() {
            if rng.gen::<f32>() < self.noise {
                loop {
                    let candidate = FIRST_CONTENT + rng.gen_range(0..self.content_tokens());
                    if Some(candidate) != forbidden {
                        *t = candidate;
                        break;
                    }
                }
            }
        }
    }

    /// Number of content tokens.
    pub fn content_tokens(&self) -> usize {
        self.vocab.saturating_sub(FIRST_CONTENT)
    }

    /// Tokens per cluster.
    pub fn cluster_size(&self) -> usize {
        self.content_tokens() / self.clusters
    }

    /// Total sequence length produced by the pair tasks:
    /// `[CLS] a… [SEP] b…`.
    pub fn pair_len(&self) -> usize {
        2 + 2 * self.sentence_len
    }

    /// Samples a token from cluster `c`.
    fn sample_from_cluster(&self, rng: &mut impl Rng, c: usize) -> usize {
        let k = self.cluster_size();
        FIRST_CONTENT + c * k + rng.gen_range(0..k)
    }

    /// The cluster a token belongs to (content tokens only).
    pub fn cluster_of(&self, token: usize) -> Option<usize> {
        if token < FIRST_CONTENT {
            return None;
        }
        let c = (token - FIRST_CONTENT) / self.cluster_size();
        (c < self.clusters).then_some(c)
    }
}

/// Generates an MNLI-like dataset: premise from cluster `c`;
/// entailment pairs it with the same cluster, contradiction with the
/// "opposite" cluster (`c + clusters/2`), neutral with an unrelated
/// one. Labels are balanced.
///
/// # Errors
///
/// Propagates [`TaskSpec::validate`] failures and rejects `n == 0`.
pub fn nli(spec: &TaskSpec, n: usize, rng: &mut impl Rng) -> Result<Vec<Example>, TaskError> {
    spec.validate()?;
    if n == 0 {
        return Err(TaskError::InvalidParameter { name: "n" });
    }
    let half = spec.clusters / 2;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 3;
        let c = rng.gen_range(0..spec.clusters);
        let hyp_cluster = match label {
            0 => c,
            1 => (c + half) % spec.clusters,
            _ => {
                // Unrelated: neither same nor opposite.
                let mut other = rng.gen_range(0..spec.clusters);
                while other == c || other == (c + half) % spec.clusters {
                    other = rng.gen_range(0..spec.clusters);
                }
                other
            }
        };
        let mut premise: Vec<usize> =
            (0..spec.sentence_len).map(|_| spec.sample_from_cluster(rng, c)).collect();
        let mut hypothesis: Vec<usize> =
            (0..spec.sentence_len).map(|_| spec.sample_from_cluster(rng, hyp_cluster)).collect();
        spec.corrupt(rng, &mut premise, None);
        spec.corrupt(rng, &mut hypothesis, None);
        out.push(pair_example(&premise, &hypothesis, Label::Class(label)));
    }
    Ok(out)
}

/// Generates an STS-B-like dataset: the second sentence shares `m` of
/// its tokens' clusters with the first; the gold score is
/// `5 · m / sentence_len`.
///
/// # Errors
///
/// Propagates [`TaskSpec::validate`] failures and rejects `n == 0`.
pub fn sts(spec: &TaskSpec, n: usize, rng: &mut impl Rng) -> Result<Vec<Example>, TaskError> {
    spec.validate()?;
    if n == 0 {
        return Err(TaskError::InvalidParameter { name: "n" });
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let c = rng.gen_range(0..spec.clusters);
        let m = i % (spec.sentence_len + 1); // 0..=len shared positions
        let a: Vec<usize> =
            (0..spec.sentence_len).map(|_| spec.sample_from_cluster(rng, c)).collect();
        let b: Vec<usize> = (0..spec.sentence_len)
            .map(|j| {
                if j < m {
                    spec.sample_from_cluster(rng, c)
                } else {
                    // Draw from a different cluster.
                    let mut other = rng.gen_range(0..spec.clusters);
                    while other == c {
                        other = rng.gen_range(0..spec.clusters);
                    }
                    spec.sample_from_cluster(rng, other)
                }
            })
            .collect();
        let score = 5.0 * m as f32 / spec.sentence_len as f32;
        let mut a = a;
        let mut b = b;
        spec.corrupt(rng, &mut a, None);
        spec.corrupt(rng, &mut b, None);
        out.push(pair_example(&a, &b, Label::Score(score)));
    }
    Ok(out)
}

/// Generates a SQuAD-like dataset. The sequence is
/// `[CLS] q [SEP] context…` where `q` is a content token; the answer is
/// the contiguous run of `q` placed inside a context of tokens from
/// other clusters. The label is the run's position range.
///
/// # Errors
///
/// Propagates [`TaskSpec::validate`] failures and rejects `n == 0`.
pub fn span(spec: &TaskSpec, n: usize, rng: &mut impl Rng) -> Result<Vec<Example>, TaskError> {
    spec.validate()?;
    if n == 0 {
        return Err(TaskError::InvalidParameter { name: "n" });
    }
    let context_len = 2 * spec.sentence_len;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let answer_cluster = rng.gen_range(0..spec.clusters);
        let q = spec.sample_from_cluster(rng, answer_cluster);
        let run_len = rng.gen_range(1..=2.min(context_len));
        let run_start = rng.gen_range(0..=context_len - run_len);
        let mut context = Vec::with_capacity(context_len);
        for j in 0..context_len {
            if (run_start..run_start + run_len).contains(&j) {
                context.push(q);
            } else {
                // Filler from any other cluster.
                let mut other = rng.gen_range(0..spec.clusters);
                while other == answer_cluster {
                    other = rng.gen_range(0..spec.clusters);
                }
                context.push(spec.sample_from_cluster(rng, other));
            }
        }
        // Corrupt filler positions only, never forging the answer token.
        let run = run_start..run_start + run_len;
        let mut fillers: Vec<usize> =
            context.iter().enumerate().filter(|(j, _)| !run.contains(j)).map(|(_, &t)| t).collect();
        spec.corrupt(rng, &mut fillers, Some(q));
        let mut fill_iter = fillers.into_iter();
        for (j, slot) in context.iter_mut().enumerate() {
            if !run.contains(&j) {
                *slot = fill_iter.next().expect("filler count matches");
            }
        }
        let mut ids = vec![CLS, q, SEP];
        let offset = ids.len();
        ids.extend(&context);
        let type_ids = vec![0; 3].into_iter().chain(vec![1; context_len]).collect();
        out.push(Example {
            ids,
            type_ids,
            label: Label::Span { start: offset + run_start, end: offset + run_start + run_len - 1 },
        });
    }
    Ok(out)
}

fn pair_example(a: &[usize], b: &[usize], label: Label) -> Example {
    let mut ids = vec![CLS];
    ids.extend(a);
    ids.push(SEP);
    ids.extend(b);
    let mut type_ids = vec![0; 2 + a.len()];
    type_ids.extend(vec![1; b.len()]);
    Example { ids, type_ids, label }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> TaskSpec {
        TaskSpec::small(62) // 60 content tokens, 6 clusters of 10
    }

    #[test]
    fn spec_validation() {
        assert!(spec().validate().is_ok());
        assert!(TaskSpec { vocab: 62, clusters: 5, sentence_len: 5, noise: 0.0 }
            .validate()
            .is_err());
        assert!(TaskSpec { vocab: 62, clusters: 2, sentence_len: 5, noise: 0.0 }
            .validate()
            .is_err());
        assert!(TaskSpec { vocab: 62, clusters: 6, sentence_len: 0, noise: 0.0 }
            .validate()
            .is_err());
        assert!(TaskSpec { vocab: 10, clusters: 6, sentence_len: 5, noise: 0.0 }
            .validate()
            .is_err());
        assert!(TaskSpec::small(62).with_noise(1.5).validate().is_err());
        assert!(TaskSpec::small(62).with_noise(0.3).validate().is_ok());
    }

    #[test]
    fn nli_labels_are_balanced_and_consistent() -> Result<(), TaskError> {
        let s = spec();
        let data = nli(&s, 99, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(data.len(), 99);
        let mut counts = [0usize; 3];
        for ex in &data {
            let c = ex.label.as_class()?;
            counts[c] += 1;
            assert_eq!(ex.ids.len(), s.pair_len());
            assert_eq!(ex.ids[0], CLS);
            assert_eq!(ex.ids[1 + s.sentence_len], SEP);
            // Check the latent rule holds.
            let prem_cluster = s.cluster_of(ex.ids[1]).unwrap();
            let hyp_cluster = s.cluster_of(ex.ids[2 + s.sentence_len]).unwrap();
            match c {
                0 => assert_eq!(hyp_cluster, prem_cluster),
                1 => assert_eq!(hyp_cluster, (prem_cluster + 3) % 6),
                _ => {
                    assert_ne!(hyp_cluster, prem_cluster);
                    assert_ne!(hyp_cluster, (prem_cluster + 3) % 6);
                }
            }
        }
        assert_eq!(counts, [33, 33, 33]);
        Ok(())
    }

    #[test]
    fn nli_premise_tokens_come_from_one_cluster() {
        let s = spec();
        let data = nli(&s, 30, &mut StdRng::seed_from_u64(2)).unwrap();
        for ex in data {
            let clusters: Vec<usize> =
                ex.ids[1..1 + s.sentence_len].iter().map(|&t| s.cluster_of(t).unwrap()).collect();
            assert!(clusters.iter().all(|&c| c == clusters[0]));
        }
    }

    #[test]
    fn sts_scores_span_full_range() -> Result<(), TaskError> {
        let s = spec();
        let data = sts(&s, 60, &mut StdRng::seed_from_u64(3)).unwrap();
        let scores: Vec<f32> =
            data.iter().map(|ex| ex.label.as_score()).collect::<Result<_, _>>()?;
        assert!(scores.contains(&0.0));
        assert!(scores.contains(&5.0));
        assert!(scores.iter().all(|&v| (0.0..=5.0).contains(&v)));
        Ok(())
    }

    #[test]
    fn sts_overlap_matches_score() -> Result<(), TaskError> {
        let s = spec();
        let data = sts(&s, 30, &mut StdRng::seed_from_u64(4)).unwrap();
        for ex in data {
            let score = ex.label.as_score()?;
            let a_cluster = s.cluster_of(ex.ids[1]).unwrap();
            let b = &ex.ids[2 + s.sentence_len..];
            let shared = b.iter().filter(|&&t| s.cluster_of(t) == Some(a_cluster)).count();
            let expected = 5.0 * shared as f32 / s.sentence_len as f32;
            assert!((score - expected).abs() < 1e-6);
        }
        Ok(())
    }

    #[test]
    fn span_answers_point_at_question_token_runs() -> Result<(), TaskError> {
        let s = spec();
        let data = span(&s, 40, &mut StdRng::seed_from_u64(5)).unwrap();
        for ex in data {
            let (start, end) = ex.label.as_span()?;
            let q = ex.ids[1];
            assert!(start <= end && end < ex.ids.len());
            for pos in start..=end {
                assert_eq!(ex.ids[pos], q, "answer span must repeat the question token");
            }
            // No stray q outside the span within the context.
            for (pos, &t) in ex.ids.iter().enumerate().skip(3) {
                if !(start..=end).contains(&pos) {
                    assert_ne!(t, q, "unexpected answer token at {pos}");
                }
            }
        }
        Ok(())
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let s = spec();
        let a = nli(&s, 10, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = nli(&s, 10, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_examples_rejected() {
        let s = spec();
        assert!(nli(&s, 0, &mut StdRng::seed_from_u64(1)).is_err());
        assert!(sts(&s, 0, &mut StdRng::seed_from_u64(1)).is_err());
        assert!(span(&s, 0, &mut StdRng::seed_from_u64(1)).is_err());
    }

    #[test]
    fn noise_preserves_labels_and_shapes() -> Result<(), TaskError> {
        let s = spec().with_noise(0.4);
        let data = nli(&s, 30, &mut StdRng::seed_from_u64(21)).unwrap();
        for ex in &data {
            assert_eq!(ex.ids.len(), s.pair_len());
            assert!(matches!(ex.label, Label::Class(_)));
        }
        // Spans still point at runs of the question token under noise.
        let spans = span(&s, 30, &mut StdRng::seed_from_u64(22)).unwrap();
        for ex in spans {
            let (start, end) = ex.label.as_span()?;
            let q = ex.ids[1];
            for pos in start..=end {
                assert_eq!(ex.ids[pos], q);
            }
            for (pos, &t) in ex.ids.iter().enumerate().skip(3) {
                if !(start..=end).contains(&pos) {
                    assert_ne!(t, q, "noise forged an answer token at {pos}");
                }
            }
        }
        Ok(())
    }

    #[test]
    fn noise_actually_corrupts_tokens() {
        let clean = spec();
        let noisy = clean.with_noise(0.5);
        // Same seed: noisy generation must diverge from clean for NLI.
        let a = nli(&clean, 20, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = nli(&noisy, 20, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_ne!(a, b);
        // With noise, some premise tokens leave the premise cluster.
        let mixed = b.iter().any(|ex| {
            let c0 = noisy.cluster_of(ex.ids[1]);
            ex.ids[1..1 + noisy.sentence_len].iter().any(|&t| noisy.cluster_of(t) != c0)
        });
        assert!(mixed);
    }

    #[test]
    fn paper_names() {
        assert_eq!(TaskKind::Nli.paper_name(), "MNLI");
        assert_eq!(TaskKind::Sts.paper_name(), "STS-B");
        assert_eq!(TaskKind::Span.paper_name(), "SQuAD v1.1");
    }
}
