//! Synthetic evaluation tasks standing in for GLUE MNLI, GLUE STS-B and
//! SQuAD v1.1.
//!
//! The paper measures quantization quality as the *accuracy drop* a
//! quantized model suffers on downstream tasks. We cannot ship GLUE or
//! SQuAD, so this crate generates synthetic datasets with the same
//! output structure and a learnable latent rule:
//!
//! * [`data::nli`] — 3-way classification over premise/hypothesis token
//!   pairs built from token "topic clusters" (entail = same cluster,
//!   contradict = opposite cluster, neutral = unrelated cluster);
//!   metric: accuracy, like MNLI-m.
//! * [`data::sts`] — graded pair similarity equal to the cluster-overlap
//!   ratio; metric: Spearman correlation, like STS-B.
//! * [`data::span`] — find the contiguous run of the token named by the
//!   leading "question" token; metric: token-overlap F1, like SQuAD.
//!
//! [`trainer`] fine-tunes tiny `gobo-train` encoders with task heads,
//! [`export`] transfers trained parameters into an inference
//! [`gobo_model::TransformerModel`] by name, and [`eval`] scores such a
//! model (quantized or not) on a dataset — the full paper loop.

#![deny(missing_docs)]

pub mod data;
pub mod error;
pub mod eval;
pub mod export;
pub mod heads;
pub mod metrics;
pub mod trainer;

pub use data::{Example, Label, TaskKind};
pub use error::TaskError;
pub use eval::{evaluate, TaskScore};
pub use trainer::{train, TrainedModel, TrainerOptions};
