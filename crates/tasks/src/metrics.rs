//! Task metrics: accuracy, Spearman, span F1.

use crate::error::TaskError;

/// Fraction of exact matches between predictions and gold classes.
///
/// # Errors
///
/// Returns [`TaskError::EmptyDataset`] for empty inputs and
/// [`TaskError::InvalidParameter`] when lengths differ.
pub fn accuracy(predictions: &[usize], gold: &[usize]) -> Result<f64, TaskError> {
    if predictions.is_empty() {
        return Err(TaskError::EmptyDataset);
    }
    if predictions.len() != gold.len() {
        return Err(TaskError::InvalidParameter { name: "predictions" });
    }
    let hits = predictions.iter().zip(gold).filter(|(p, g)| p == g).count();
    Ok(hits as f64 / predictions.len() as f64)
}

/// Spearman rank correlation between predicted and gold scores (the
/// STS-B metric), as a percentage-like fraction in `[-1, 1]`.
///
/// # Errors
///
/// Propagates [`gobo_stats::spearman`] failures.
pub fn spearman(predictions: &[f32], gold: &[f32]) -> Result<f64, TaskError> {
    Ok(gobo_stats::spearman(predictions, gold)?)
}

/// Token-overlap F1 of one predicted span against the gold span
/// (inclusive bounds), as used by SQuAD.
pub fn span_f1(pred: (usize, usize), gold: (usize, usize)) -> f64 {
    let (ps, pe) = (pred.0.min(pred.1), pred.0.max(pred.1));
    let (gs, ge) = gold;
    let overlap_start = ps.max(gs);
    let overlap_end = pe.min(ge);
    if overlap_end < overlap_start {
        return 0.0;
    }
    let overlap = (overlap_end - overlap_start + 1) as f64;
    let pred_len = (pe - ps + 1) as f64;
    let gold_len = (ge - gs + 1) as f64;
    let precision = overlap / pred_len;
    let recall = overlap / gold_len;
    2.0 * precision * recall / (precision + recall)
}

/// Exact-match of one predicted span (SQuAD's stricter EM metric).
pub fn span_exact_match(pred: (usize, usize), gold: (usize, usize)) -> bool {
    let (ps, pe) = (pred.0.min(pred.1), pred.0.max(pred.1));
    (ps, pe) == gold
}

/// Fraction of exact span matches over a dataset.
///
/// # Errors
///
/// Returns [`TaskError::EmptyDataset`] for empty inputs and
/// [`TaskError::InvalidParameter`] when lengths differ.
pub fn mean_exact_match(
    preds: &[(usize, usize)],
    gold: &[(usize, usize)],
) -> Result<f64, TaskError> {
    if preds.is_empty() {
        return Err(TaskError::EmptyDataset);
    }
    if preds.len() != gold.len() {
        return Err(TaskError::InvalidParameter { name: "predictions" });
    }
    let hits = preds.iter().zip(gold).filter(|(&p, &g)| span_exact_match(p, g)).count();
    Ok(hits as f64 / preds.len() as f64)
}

/// Mean [`span_f1`] over a dataset.
///
/// # Errors
///
/// Returns [`TaskError::EmptyDataset`] for empty inputs and
/// [`TaskError::InvalidParameter`] when lengths differ.
pub fn mean_span_f1(preds: &[(usize, usize)], gold: &[(usize, usize)]) -> Result<f64, TaskError> {
    if preds.is_empty() {
        return Err(TaskError::EmptyDataset);
    }
    if preds.len() != gold.len() {
        return Err(TaskError::InvalidParameter { name: "predictions" });
    }
    Ok(preds.iter().zip(gold).map(|(&p, &g)| span_f1(p, g)).sum::<f64>() / preds.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]).unwrap(), 2.0 / 3.0);
        assert_eq!(accuracy(&[1], &[1]).unwrap(), 1.0);
        assert!(accuracy(&[], &[]).is_err());
        assert!(accuracy(&[1], &[1, 2]).is_err());
    }

    #[test]
    fn spearman_delegates() {
        let r = spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]).unwrap();
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn span_f1_exact_match_is_one() {
        assert_eq!(span_f1((3, 5), (3, 5)), 1.0);
    }

    #[test]
    fn span_f1_disjoint_is_zero() {
        assert_eq!(span_f1((0, 2), (5, 7)), 0.0);
    }

    #[test]
    fn span_f1_partial_overlap() {
        // pred [2,4], gold [3,6]: overlap 2, P=2/3, R=2/4 → F1 = 4/7.
        let f1 = span_f1((2, 4), (3, 6));
        assert!((f1 - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn span_f1_handles_inverted_prediction() {
        // A confused model may emit end < start; we normalize.
        assert_eq!(span_f1((5, 3), (3, 5)), 1.0);
    }

    #[test]
    fn exact_match_is_strict() {
        assert!(span_exact_match((3, 5), (3, 5)));
        assert!(span_exact_match((5, 3), (3, 5)), "normalizes inversion");
        assert!(!span_exact_match((3, 4), (3, 5)));
        let em = mean_exact_match(&[(0, 1), (4, 5)], &[(0, 1), (4, 6)]).unwrap();
        assert_eq!(em, 0.5);
        assert!(mean_exact_match(&[], &[]).is_err());
        assert!(mean_exact_match(&[(0, 0)], &[]).is_err());
    }

    #[test]
    fn mean_span_f1_averages() {
        let preds = [(0, 1), (4, 4)];
        let gold = [(0, 1), (9, 9)];
        assert_eq!(mean_span_f1(&preds, &gold).unwrap(), 0.5);
        assert!(mean_span_f1(&[], &[]).is_err());
        assert!(mean_span_f1(&[(0, 0)], &[]).is_err());
    }
}
