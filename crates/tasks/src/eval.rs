//! Inference-side evaluation of (possibly quantized) models.
//!
//! This is the measurement loop behind every accuracy column in the
//! paper's tables: run the FP32-decoded model over a task's dataset and
//! report the task metric. Encodes run in fused batches of
//! [`EVAL_BATCH`] sequences — the batched forward is bitwise identical
//! to encoding each example alone, so scores are unchanged while the
//! per-layer work is amortized exactly as in the serving tier.

use gobo_model::batch::EncodeInput;
use gobo_model::forward::EncoderOutput;
use gobo_model::TransformerModel;
use gobo_tensor::Tensor;

use crate::data::{Example, TaskKind};
use crate::error::TaskError;
use crate::heads::HeadWeights;
use crate::metrics;

/// A task metric value with its name.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskScore {
    /// The task that was evaluated.
    pub kind: TaskKind,
    /// Metric name (`accuracy`, `spearman`, `f1`).
    pub metric: &'static str,
    /// Metric value in `[0, 1]` (Spearman may be negative for broken
    /// models).
    pub value: f64,
}

impl TaskScore {
    /// The "error" the paper reports: baseline minus this, in the same
    /// percentage points.
    pub fn error_vs(&self, baseline: &TaskScore) -> f64 {
        baseline.value - self.value
    }
}

/// Evaluates a model + head over a dataset, dispatching on the head's
/// task kind.
///
/// # Errors
///
/// Returns [`TaskError::EmptyDataset`] for empty datasets,
/// [`TaskError::LabelKindMismatch`] for label/kind disagreements, and
/// propagates inference failures.
pub fn evaluate(
    model: &TransformerModel,
    head: &HeadWeights,
    dataset: &[Example],
) -> Result<TaskScore, TaskError> {
    if dataset.is_empty() {
        return Err(TaskError::EmptyDataset);
    }
    let outputs = encode_all(model, dataset)?;
    match head {
        HeadWeights::Classifier { weight, bias } => {
            let mut preds = Vec::with_capacity(dataset.len());
            let mut gold = Vec::with_capacity(dataset.len());
            for (ex, out) in dataset.iter().zip(&outputs) {
                gold.push(ex.label.as_class()?);
                preds.push(classify(model, weight, bias, out)?);
            }
            Ok(TaskScore {
                kind: TaskKind::Nli,
                metric: "accuracy",
                value: metrics::accuracy(&preds, &gold)?,
            })
        }
        HeadWeights::Regressor { weight, bias } => {
            let mut preds = Vec::with_capacity(dataset.len());
            let mut gold = Vec::with_capacity(dataset.len());
            for (ex, out) in dataset.iter().zip(&outputs) {
                gold.push(ex.label.as_score()?);
                preds.push(regress(model, weight, bias, out)?);
            }
            Ok(TaskScore {
                kind: TaskKind::Sts,
                metric: "spearman",
                value: metrics::spearman(&preds, &gold)?,
            })
        }
        HeadWeights::Span { start_weight, start_bias, end_weight, end_bias } => {
            let mut preds = Vec::with_capacity(dataset.len());
            let mut gold = Vec::with_capacity(dataset.len());
            for (ex, out) in dataset.iter().zip(&outputs) {
                gold.push(ex.label.as_span()?);
                preds.push(extract_span(start_weight, start_bias, end_weight, end_bias, out)?);
            }
            Ok(TaskScore {
                kind: TaskKind::Span,
                metric: "f1",
                value: metrics::mean_span_f1(&preds, &gold)?,
            })
        }
    }
}

/// Sequences per fused forward during evaluation: large enough to
/// amortize each layer's weight traversal, small enough that the
/// stacked activation panel of even long sequences stays modest.
const EVAL_BATCH: usize = 32;

/// Encodes the whole dataset in [`EVAL_BATCH`]-sized fused batches.
fn encode_all(
    model: &TransformerModel,
    dataset: &[Example],
) -> Result<Vec<EncoderOutput>, TaskError> {
    let mut outputs = Vec::with_capacity(dataset.len());
    for chunk in dataset.chunks(EVAL_BATCH) {
        let inputs: Vec<EncodeInput<'_>> =
            chunk.iter().map(|ex| EncodeInput { ids: &ex.ids, type_ids: &ex.type_ids }).collect();
        outputs.extend(model.encode_batch(&inputs)?);
    }
    Ok(outputs)
}

fn pooled(model: &TransformerModel, out: &EncoderOutput) -> Result<Tensor, TaskError> {
    let hidden = model.config().hidden;
    let pooled = out
        .pooled
        .as_ref()
        .ok_or(gobo_model::ModelError::InvalidInput { what: "model has no pooler" })?;
    Ok(pooled.reshape(&[1, hidden]).map_err(gobo_model::ModelError::from)?)
}

fn classify(
    model: &TransformerModel,
    weight: &Tensor,
    bias: &Tensor,
    out: &EncoderOutput,
) -> Result<usize, TaskError> {
    let p = pooled(model, out)?;
    let logits =
        p.matmul_nt(weight).and_then(|l| l.add_bias(bias)).map_err(gobo_model::ModelError::from)?;
    Ok(logits.argmax_rows().map_err(gobo_model::ModelError::from)?[0])
}

fn regress(
    model: &TransformerModel,
    weight: &Tensor,
    bias: &Tensor,
    out: &EncoderOutput,
) -> Result<f32, TaskError> {
    let p = pooled(model, out)?;
    let pred =
        p.matmul_nt(weight).and_then(|l| l.add_bias(bias)).map_err(gobo_model::ModelError::from)?;
    Ok(pred.as_slice()[0] * 5.0)
}

fn extract_span(
    start_weight: &Tensor,
    start_bias: &Tensor,
    end_weight: &Tensor,
    end_bias: &Tensor,
    out: &EncoderOutput,
) -> Result<(usize, usize), TaskError> {
    let score = |w: &Tensor, b: &Tensor| -> Result<Vec<f32>, TaskError> {
        let logits = out
            .hidden
            .matmul_nt(w)
            .and_then(|l| l.add_bias(b))
            .map_err(gobo_model::ModelError::from)?;
        Ok(logits.into_vec())
    };
    let start_scores = score(start_weight, start_bias)?;
    let end_scores = score(end_weight, end_bias)?;
    let start = argmax(&start_scores);
    // End is constrained to start at or after the predicted start.
    let end = start + argmax(&end_scores[start..]);
    Ok((start, end))
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{nli, span, sts, TaskSpec};
    use crate::export::to_transformer_model;
    use crate::heads::HeadWeights;
    use crate::trainer::{train, TrainerOptions};
    use gobo_train::layers::EncoderDims;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> TaskSpec {
        TaskSpec::small(62)
    }

    fn dims(s: &TaskSpec) -> EncoderDims {
        EncoderDims {
            layers: 1,
            hidden: 24,
            heads: 2,
            intermediate: 48,
            vocab: s.vocab,
            max_position: 16,
            type_vocab: 2,
        }
    }

    #[test]
    fn trained_nli_beats_chance() {
        let s = spec();
        let d = dims(&s);
        let mut rng = StdRng::seed_from_u64(10);
        let train_data = nli(&s, 150, &mut rng).unwrap();
        let trained = train(
            TaskKind::Nli,
            &d,
            &train_data,
            &TrainerOptions { epochs: 5, learning_rate: 3e-4, seed: 1 },
        )
        .unwrap();
        let model = to_transformer_model("TinyNLI", &d, &trained.params).unwrap();
        let head = HeadWeights::extract(TaskKind::Nli, &trained.params).unwrap();
        // Unit tests check pipeline consistency on the training set; the
        // generalizing reference models live in the (release-mode)
        // experiment harness with larger data and width.
        let score = evaluate(&model, &head, &train_data).unwrap();
        assert_eq!(score.metric, "accuracy");
        assert!(score.value > 0.55, "train accuracy {} should beat 3-way chance", score.value);
    }

    #[test]
    fn trained_sts_correlates() {
        let s = spec();
        let d = dims(&s);
        let mut rng = StdRng::seed_from_u64(11);
        let train_data = sts(&s, 150, &mut rng).unwrap();
        let trained = train(
            TaskKind::Sts,
            &d,
            &train_data,
            &TrainerOptions { epochs: 5, learning_rate: 3e-4, seed: 2 },
        )
        .unwrap();
        let model = to_transformer_model("TinySTS", &d, &trained.params).unwrap();
        let head = HeadWeights::extract(TaskKind::Sts, &trained.params).unwrap();
        let score = evaluate(&model, &head, &train_data).unwrap();
        assert_eq!(score.metric, "spearman");
        assert!(score.value > 0.6, "train spearman {}", score.value);
    }

    #[test]
    fn trained_span_finds_answers() {
        let s = spec();
        let d = dims(&s);
        let mut rng = StdRng::seed_from_u64(12);
        let train_data = span(&s, 150, &mut rng).unwrap();
        let trained = train(
            TaskKind::Span,
            &d,
            &train_data,
            &TrainerOptions { epochs: 5, learning_rate: 3e-4, seed: 3 },
        )
        .unwrap();
        let model = to_transformer_model("TinySpan", &d, &trained.params).unwrap();
        let head = HeadWeights::extract(TaskKind::Span, &trained.params).unwrap();
        let score = evaluate(&model, &head, &train_data).unwrap();
        assert_eq!(score.metric, "f1");
        // Random spans on a ~13-token sequence score ≈ 0.1; learning the
        // copy-match rule should do far better.
        assert!(score.value > 0.45, "train f1 {}", score.value);
    }

    #[test]
    fn error_vs_baseline() {
        let base = TaskScore { kind: TaskKind::Nli, metric: "accuracy", value: 0.84 };
        let quant = TaskScore { kind: TaskKind::Nli, metric: "accuracy", value: 0.83 };
        assert!((quant.error_vs(&base) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn label_mismatch_detected() {
        let s = spec();
        let d = dims(&s);
        let mut rng = StdRng::seed_from_u64(13);
        let data = nli(&s, 9, &mut rng).unwrap();
        let trained = train(
            TaskKind::Nli,
            &d,
            &data,
            &TrainerOptions { epochs: 1, learning_rate: 3e-4, seed: 0 },
        )
        .unwrap();
        let model = to_transformer_model("Tiny", &d, &trained.params).unwrap();
        let head = HeadWeights::extract(TaskKind::Nli, &trained.params).unwrap();
        let sts_data = sts(&s, 6, &mut rng).unwrap();
        assert!(matches!(evaluate(&model, &head, &sts_data), Err(TaskError::LabelKindMismatch)));
        assert!(matches!(evaluate(&model, &head, &[]), Err(TaskError::EmptyDataset)));
    }
}
