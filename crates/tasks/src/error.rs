//! Error type for task generation, training and evaluation.

use std::fmt;

use gobo_model::ModelError;
use gobo_stats::StatsError;
use gobo_train::TrainError;

/// Error returned by fallible task operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskError {
    /// A generation parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// A dataset was empty where at least one example is required.
    EmptyDataset,
    /// An example's label kind did not match the task being evaluated.
    LabelKindMismatch,
    /// Training failed.
    Train(TrainError),
    /// Inference failed.
    Model(ModelError),
    /// Metric computation failed.
    Stats(StatsError),
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::InvalidParameter { name } => {
                write!(f, "task parameter `{name}` outside valid domain")
            }
            TaskError::EmptyDataset => write!(f, "empty dataset"),
            TaskError::LabelKindMismatch => write!(f, "example label does not match task kind"),
            TaskError::Train(e) => write!(f, "training failure: {e}"),
            TaskError::Model(e) => write!(f, "model failure: {e}"),
            TaskError::Stats(e) => write!(f, "metric failure: {e}"),
        }
    }
}

impl std::error::Error for TaskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TaskError::Train(e) => Some(e),
            TaskError::Model(e) => Some(e),
            TaskError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TrainError> for TaskError {
    fn from(e: TrainError) -> Self {
        TaskError::Train(e)
    }
}

impl From<ModelError> for TaskError {
    fn from(e: ModelError) -> Self {
        TaskError::Model(e)
    }
}

impl From<StatsError> for TaskError {
    fn from(e: StatsError) -> Self {
        TaskError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        assert!(TaskError::EmptyDataset.to_string().contains("empty"));
        let e: TaskError = TrainError::NonScalarLoss { elements: 2 }.into();
        assert!(e.source().is_some());
        let e: TaskError = StatsError::EmptyInput.into();
        assert!(e.source().is_some());
    }
}
