//! Parser for failpoint spec strings (`name=action(args)`), used by
//! [`configure_str`](crate::configure_str) and the `GOBO_FAILPOINTS`
//! environment variable.

use std::time::Duration;

use crate::{FaultAction, Policy, Trigger};

/// A malformed failpoint spec entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The spec entry that failed to parse.
    pub entry: String,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad failpoint spec `{}`: {}", self.entry, self.reason)
    }
}

impl std::error::Error for SpecError {}

fn err(entry: &str, reason: impl Into<String>) -> SpecError {
    SpecError { entry: entry.to_owned(), reason: reason.into() }
}

/// Parses one `name=policy` entry. `Ok((name, None))` means `off`
/// (clear the point).
pub(crate) fn parse_entry(entry: &str) -> Result<(&str, Option<Policy>), SpecError> {
    let (name, policy) =
        entry.split_once('=').ok_or_else(|| err(entry, "expected `name=policy`"))?;
    let (name, policy) = (name.trim(), policy.trim());
    if name.is_empty() {
        return Err(err(entry, "empty failpoint name"));
    }
    if policy.eq_ignore_ascii_case("off") {
        return Ok((name, None));
    }

    let (action_word, args) = match policy.split_once('(') {
        Some((word, rest)) => {
            let inner = rest.strip_suffix(')').ok_or_else(|| err(entry, "unclosed `(`"))?;
            (word.trim(), parse_args(entry, inner)?)
        }
        None => (policy, Vec::new()),
    };

    let mut delay: Option<Duration> = None;
    let mut trigger = Trigger::Always;
    let mut p: Option<f64> = None;
    let mut seed: u64 = 0;
    for (key, value) in &args {
        match key.as_str() {
            "ms" => {
                let v: u64 = value
                    .parse()
                    .map_err(|_| err(entry, format!("`ms={value}` is not an integer")))?;
                delay = Some(Duration::from_millis(v));
            }
            "us" => {
                let v: u64 = value
                    .parse()
                    .map_err(|_| err(entry, format!("`us={value}` is not an integer")))?;
                delay = Some(Duration::from_micros(v));
            }
            "every" => {
                let v: u64 = value
                    .parse()
                    .map_err(|_| err(entry, format!("`every={value}` is not an integer")))?;
                if v == 0 {
                    return Err(err(entry, "`every` must be >= 1"));
                }
                trigger = Trigger::EveryNth(v);
            }
            "p" => {
                let v: f64 = value
                    .parse()
                    .map_err(|_| err(entry, format!("`p={value}` is not a number")))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(err(entry, "`p` must be in [0, 1]"));
                }
                p = Some(v);
            }
            "seed" => {
                seed = value
                    .parse()
                    .map_err(|_| err(entry, format!("`seed={value}` is not an integer")))?;
            }
            other => return Err(err(entry, format!("unknown argument `{other}`"))),
        }
    }
    if let Some(p) = p {
        trigger = Trigger::Probability { p, seed };
    }

    let action = match action_word {
        "error" => FaultAction::Error,
        "panic" => FaultAction::Panic,
        "delay" => {
            FaultAction::Delay(delay.ok_or_else(|| err(entry, "`delay` needs `ms=` or `us=`"))?)
        }
        other => {
            return Err(err(
                entry,
                format!("unknown action `{other}` (expected off|error|panic|delay)"),
            ))
        }
    };
    if delay.is_some() && !matches!(action, FaultAction::Delay(_)) {
        return Err(err(entry, "`ms`/`us` only apply to `delay`"));
    }
    Ok((name, Some(Policy { action, trigger })))
}

fn parse_args(entry: &str, inner: &str) -> Result<Vec<(String, String)>, SpecError> {
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|pair| {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| err(entry, format!("argument `{pair}` is not `key=value`")))?;
            Ok((k.trim().to_owned(), v.trim().to_owned()))
        })
        .collect()
}
