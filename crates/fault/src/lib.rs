//! `gobo-fault`: deterministic fault injection for the
//! quantize→store→load→serve pipeline.
//!
//! A decoded GOBO model is supposed to be a bit-faithful replacement for
//! the FP32 original, so the failure modes that matter are the quiet
//! ones — a half-written container, a worker that dies and silently
//! shrinks the pool, a queue that wedges instead of rejecting. This
//! crate exists to *provoke* those failures on demand, so the rest of
//! the stack can prove it degrades instead of lying.
//!
//! # Model
//!
//! Code under test declares **named failpoints** with the
//! [`fail_point!`] macro. Each failpoint is off unless a [`Policy`] is
//! configured for its name; a policy pairs an *action* (return an
//! error, panic, sleep) with a *trigger* (always, every N-th
//! evaluation, seeded pseudo-random probability). All scheduling is
//! deterministic: every-N-th counts evaluations per point, and the
//! probability trigger hashes `(seed, evaluation index)` — the same
//! configuration replays the same fault schedule.
//!
//! # Cost when disabled
//!
//! Mirroring the `gobo-obs` span pattern, a failpoint with no policies
//! configured anywhere in the process is **one relaxed atomic load** —
//! no locks, no map lookup, no allocation — so failpoints can sit on
//! serving hot paths permanently.
//!
//! # Example
//!
//! ```
//! fn decode(data: &[u8]) -> Result<usize, String> {
//!     gobo_fault::fail_point!("doc.decode", "injected decode fault".to_owned());
//!     Ok(data.len())
//! }
//!
//! assert_eq!(decode(b"ok"), Ok(2));
//! gobo_fault::configure_str("doc.decode=error(every=2)").unwrap();
//! assert_eq!(decode(b"ok"), Ok(2)); // 1st evaluation: no fire
//! assert!(decode(b"ok").is_err()); // 2nd evaluation: injected
//! gobo_fault::reset();
//! assert_eq!(decode(b"ok"), Ok(2));
//! ```

#![deny(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};
use std::time::Duration;

mod spec;

pub use spec::SpecError;

/// What a fired failpoint does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// The call site returns its own error (the [`fail_point!`] macro's
    /// second argument).
    Error,
    /// The failpoint panics with a `gobo-fault:`-prefixed message,
    /// exercising `catch_unwind` / respawn paths.
    Panic,
    /// The failpoint sleeps for the given duration, then continues
    /// normally — for provoking deadline expiry and queue overload.
    Delay(Duration),
}

/// When a configured failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on every evaluation.
    Always,
    /// Fire on every N-th evaluation of the point (1-based: `EveryNth(5)`
    /// fires on evaluations 5, 10, 15, …).
    EveryNth(u64),
    /// Fire with probability `p` per evaluation, decided by hashing
    /// `(seed, evaluation index)` — deterministic for a fixed seed.
    Probability {
        /// Fire probability in `[0, 1]`.
        p: f64,
        /// Hash seed; the same seed replays the same schedule.
        seed: u64,
    },
}

/// A failpoint policy: an action plus the trigger deciding when it
/// applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Policy {
    /// What happens when the point fires.
    pub action: FaultAction,
    /// When the point fires.
    pub trigger: Trigger,
}

impl Policy {
    /// A policy firing `action` on every evaluation.
    pub fn always(action: FaultAction) -> Self {
        Policy { action, trigger: Trigger::Always }
    }

    /// A policy firing `action` on every `n`-th evaluation.
    pub fn every_nth(action: FaultAction, n: u64) -> Self {
        Policy { action, trigger: Trigger::EveryNth(n.max(1)) }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.action {
            FaultAction::Error => write!(f, "error")?,
            FaultAction::Panic => write!(f, "panic")?,
            FaultAction::Delay(d) => write!(f, "delay(us={})", d.as_micros())?,
        }
        match self.trigger {
            Trigger::Always => Ok(()),
            Trigger::EveryNth(n) => write!(f, "[every={n}]"),
            Trigger::Probability { p, seed } => write!(f, "[p={p},seed={seed}]"),
        }
    }
}

/// Marker returned by [`fire`] when an `Error`-action failpoint fired;
/// the call site converts it into its own error type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault;

/// Counters for one configured failpoint, from [`snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct FailpointStats {
    /// The failpoint name.
    pub name: String,
    /// Rendered policy (action + trigger).
    pub policy: String,
    /// Times the point was evaluated while configured.
    pub evaluated: u64,
    /// Times the point fired (including panics and delays).
    pub fired: u64,
}

struct Point {
    policy: Policy,
    evaluated: AtomicU64,
    fired: AtomicU64,
}

/// Number of configured points; `fire` is a single relaxed load of this
/// when it is zero.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static RwLock<HashMap<String, Arc<Point>>> {
    static REGISTRY: OnceLock<RwLock<HashMap<String, Arc<Point>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(HashMap::new()))
}

/// SplitMix64: the per-evaluation hash behind [`Trigger::Probability`].
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Configures (or replaces) the policy for `name`, resetting its
/// counters.
pub fn configure(name: &str, policy: Policy) {
    let mut map = registry().write().unwrap_or_else(PoisonError::into_inner);
    let point = Arc::new(Point { policy, evaluated: AtomicU64::new(0), fired: AtomicU64::new(0) });
    if map.insert(name.to_owned(), point).is_none() {
        ACTIVE.fetch_add(1, Ordering::Relaxed);
    }
}

/// Removes the policy for `name`; the point goes back to costing one
/// relaxed load (once no points remain configured).
pub fn clear(name: &str) {
    let mut map = registry().write().unwrap_or_else(PoisonError::into_inner);
    if map.remove(name).is_some() {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Removes every configured policy.
pub fn reset() {
    let mut map = registry().write().unwrap_or_else(PoisonError::into_inner);
    ACTIVE.fetch_sub(map.len(), Ordering::Relaxed);
    map.clear();
}

/// Parses and applies a failpoint spec string:
/// `name=policy[;name=policy...]` where `policy` is one of
///
/// * `off`
/// * `error` / `panic` — fire on every evaluation
/// * `delay(ms=10)` or `delay(us=250)`
/// * any action with a trigger argument: `panic(every=5)`,
///   `error(p=0.01,seed=42)`, `delay(ms=5,every=3)`
///
/// Returns the number of points configured.
///
/// # Errors
///
/// [`SpecError`] describing the first malformed entry; earlier entries
/// in the spec are already applied.
pub fn configure_str(specs: &str) -> Result<usize, SpecError> {
    let mut applied = 0;
    for entry in specs.split(';').map(str::trim).filter(|s| !s.is_empty()) {
        let (name, policy) = spec::parse_entry(entry)?;
        match policy {
            Some(policy) => configure(name, policy),
            None => clear(name),
        }
        applied += 1;
    }
    Ok(applied)
}

/// Environment variable read by [`configure_from_env`].
pub const ENV_VAR: &str = "GOBO_FAILPOINTS";

/// Applies the spec in the `GOBO_FAILPOINTS` environment variable, if
/// set. Returns the number of points configured (0 when unset).
///
/// # Errors
///
/// Propagates [`SpecError`] from [`configure_str`].
pub fn configure_from_env() -> Result<usize, SpecError> {
    match std::env::var(ENV_VAR) {
        Ok(spec) => configure_str(&spec),
        Err(_) => Ok(0),
    }
}

/// Evaluates the failpoint `name`.
///
/// * No policy configured (anywhere): one relaxed atomic load, `None`.
/// * `Delay` action fires: sleeps, then returns `None` (execution
///   continues).
/// * `Error` action fires: returns `Some(InjectedFault)`; the caller
///   maps it to its own error (the [`fail_point!`] macro does this).
/// * `Panic` action fires: panics with a message starting with
///   `gobo-fault: injected panic` (recognized by
///   [`install_panic_silencer`]).
#[inline]
pub fn fire(name: &str) -> Option<InjectedFault> {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return None;
    }
    fire_slow(name)
}

#[cold]
fn fire_slow(name: &str) -> Option<InjectedFault> {
    let point = {
        let map = registry().read().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.get(name)?)
    };
    let n = point.evaluated.fetch_add(1, Ordering::Relaxed) + 1;
    let fires = match point.policy.trigger {
        Trigger::Always => true,
        Trigger::EveryNth(k) => n % k.max(1) == 0,
        Trigger::Probability { p, seed } => {
            let hash = splitmix64(seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            ((hash >> 11) as f64 / (1u64 << 53) as f64) < p
        }
    };
    if !fires {
        return None;
    }
    point.fired.fetch_add(1, Ordering::Relaxed);
    match point.policy.action {
        FaultAction::Error => Some(InjectedFault),
        FaultAction::Delay(d) => {
            std::thread::sleep(d);
            None
        }
        FaultAction::Panic => panic!("gobo-fault: injected panic at `{name}`"),
    }
}

/// Counters for every configured failpoint, sorted by name.
pub fn snapshot() -> Vec<FailpointStats> {
    let map = registry().read().unwrap_or_else(PoisonError::into_inner);
    let mut stats: Vec<FailpointStats> = map
        .iter()
        .map(|(name, point)| FailpointStats {
            name: name.clone(),
            policy: point.policy.to_string(),
            evaluated: point.evaluated.load(Ordering::Relaxed),
            fired: point.fired.load(Ordering::Relaxed),
        })
        .collect();
    stats.sort_by(|a, b| a.name.cmp(&b.name));
    stats
}

/// Times the failpoint `name` has fired since it was configured (0 when
/// unconfigured).
pub fn fires(name: &str) -> u64 {
    let map = registry().read().unwrap_or_else(PoisonError::into_inner);
    map.get(name).map_or(0, |p| p.fired.load(Ordering::Relaxed))
}

/// Installs a panic hook that suppresses the default backtrace spew for
/// *injected* panics (payloads beginning with `gobo-fault:`) while
/// delegating every real panic to the previously installed hook.
/// Idempotent; safe to call from tests and the CLI alike.
pub fn install_panic_silencer() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|msg| msg.starts_with("gobo-fault:"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Declares a failpoint.
///
/// * `fail_point!("name")` — supports panic and delay actions; an
///   `Error` policy at such a site is ignored (there is nothing to
///   return).
/// * `fail_point!("name", expr)` — additionally supports `Error`
///   policies by returning `Err(expr)` from the enclosing function.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        let _ = $crate::fire($name);
    };
    ($name:expr, $err:expr) => {
        if $crate::fire($name).is_some() {
            return Err($err);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; serialize tests that touch it.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_point_never_fires() {
        let _g = guard();
        reset();
        for _ in 0..100 {
            assert_eq!(fire("test.disabled"), None);
        }
        assert_eq!(fires("test.disabled"), 0);
    }

    #[test]
    fn every_nth_is_exact() {
        let _g = guard();
        reset();
        configure("test.nth", Policy::every_nth(FaultAction::Error, 3));
        let fired: Vec<bool> = (0..9).map(|_| fire("test.nth").is_some()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, true, false, false, true]);
        assert_eq!(fires("test.nth"), 3);
        reset();
    }

    #[test]
    fn probability_is_deterministic_and_roughly_calibrated() {
        let _g = guard();
        reset();
        let policy = Policy {
            action: FaultAction::Error,
            trigger: Trigger::Probability { p: 0.25, seed: 42 },
        };
        configure("test.prob", policy);
        let run1: Vec<bool> = (0..400).map(|_| fire("test.prob").is_some()).collect();
        // Reconfiguring resets the evaluation counter: same schedule.
        configure("test.prob", policy);
        let run2: Vec<bool> = (0..400).map(|_| fire("test.prob").is_some()).collect();
        assert_eq!(run1, run2);
        let hits = run1.iter().filter(|&&b| b).count();
        assert!((50..=150).contains(&hits), "p=0.25 over 400 draws fired {hits} times");
        reset();
    }

    #[test]
    fn delay_sleeps_then_continues() {
        let _g = guard();
        reset();
        configure("test.delay", Policy::always(FaultAction::Delay(Duration::from_millis(20))));
        let start = std::time::Instant::now();
        assert_eq!(fire("test.delay"), None);
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(fires("test.delay"), 1);
        reset();
    }

    #[test]
    fn panic_action_panics_with_marker() {
        let _g = guard();
        reset();
        install_panic_silencer();
        configure("test.panic", Policy::always(FaultAction::Panic));
        let result = std::panic::catch_unwind(|| {
            fire("test.panic");
        });
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.starts_with("gobo-fault: injected panic at `test.panic`"), "{msg}");
        reset();
    }

    #[test]
    fn spec_round_trip() {
        let _g = guard();
        reset();
        let n =
            configure_str("a.b=panic(every=5); c.d=error; e.f=delay(ms=10,p=0.5,seed=7); g.h=off")
                .unwrap();
        assert_eq!(n, 4);
        let stats = snapshot();
        let names: Vec<&str> = stats.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a.b", "c.d", "e.f"]); // g.h=off clears
        assert_eq!(stats[0].policy, "panic[every=5]");
        assert_eq!(stats[1].policy, "error");
        assert_eq!(stats[2].policy, "delay(us=10000)[p=0.5,seed=7]");
        reset();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn spec_errors_are_reported() {
        let _g = guard();
        assert!(configure_str("no-equals-sign").is_err());
        assert!(configure_str("x=frobnicate").is_err());
        assert!(configure_str("x=error(every=zero)").is_err());
        assert!(configure_str("x=delay").is_err()); // delay needs a duration
        assert!(configure_str("x=error(p=1.5)").is_err());
        reset();
    }

    #[test]
    fn macro_error_form_returns_callers_error() {
        let _g = guard();
        reset();
        fn site() -> Result<u32, &'static str> {
            fail_point!("test.macro", "injected");
            Ok(7)
        }
        assert_eq!(site(), Ok(7));
        configure("test.macro", Policy::always(FaultAction::Error));
        assert_eq!(site(), Err("injected"));
        reset();
        assert_eq!(site(), Ok(7));
    }
}
