//! Frame codec: the binary messages exchanged between router and node.
//!
//! Layout (see the crate docs): `"GOBP"` magic, version byte, kind
//! byte, little-endian payload length, payload, and a trailing CRC-32
//! over `version|kind|payload`. Decoding never panics and never
//! allocates more than the caller's payload cap: every length read
//! from the wire is validated against the bytes actually present
//! before a buffer is reserved.

use std::io::{self, Read, Write};

use gobo_fault::fail_point;
use gobo_quant::integrity::crc32;

/// Protocol version emitted and accepted by this build.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default upper bound on a frame payload (64 MiB) — far above any
/// realistic encode response, low enough that a corrupt length prefix
/// cannot drive an out-of-memory allocation.
pub const MAX_PAYLOAD: u32 = 64 << 20; // ARITH: const 2^26, fits u32

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"GOBP";

const KIND_ENCODE_REQUEST: u8 = 1;
const KIND_ENCODE_RESPONSE: u8 = 2;
const KIND_HEARTBEAT: u8 = 3;
const KIND_HEARTBEAT_ACK: u8 = 4;
const KIND_DRAIN: u8 = 5;
const KIND_DRAIN_ACK: u8 = 6;

/// Errors surfaced by the frame codec.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The bytes on the wire do not form a valid frame (bad magic,
    /// CRC mismatch, truncated or malformed payload).
    Corrupt(String),
    /// The frame declared a payload larger than the caller's limit.
    TooLarge {
        /// Payload length declared by the frame header.
        declared: u32,
        /// The caller-supplied limit that was exceeded.
        limit: u32,
    },
    /// The peer speaks a protocol version this build does not.
    Version(u8),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "proto i/o error: {e}"),
            ProtoError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
            ProtoError::TooLarge { declared, limit } => {
                write!(f, "frame payload {declared} bytes exceeds limit {limit}")
            }
            ProtoError::Version(v) => write!(f, "unsupported protocol version {v}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// An encode request routed to a node.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodeRequestFrame {
    /// Router-assigned request id, echoed back in the response.
    pub id: u64,
    /// Model name (registry key without the bits suffix).
    pub model: String,
    /// Requested bit width; `0` means "node default".
    pub bits: u8,
    /// Deadline budget in milliseconds; `0` means "node default".
    pub deadline_ms: u64,
    /// Input token ids.
    pub ids: Vec<u32>,
    /// Segment/type ids; empty means all-zero.
    pub type_ids: Vec<u32>,
}

/// Successful encode payload, mirroring the serve-layer response.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodeOkFrame {
    /// Resolved model name.
    pub model: String,
    /// Resolved bit width.
    pub bits: u8,
    /// Dimensions of `hidden` (row-major).
    pub dims: Vec<u32>,
    /// Hidden-state values, bit-exact relative to a direct encode.
    pub hidden: Vec<f32>,
    /// Pooled representation, when the model produces one.
    pub pooled: Option<Vec<f32>>,
    /// Size of the batch this request was coalesced into.
    pub batch_size: u32,
    /// Microseconds the request waited in the node's queue.
    pub queue_us: u64,
    /// Microseconds of compute on the node.
    pub compute_us: u64,
}

/// Failed encode payload: a stable error code plus human message.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodeErrFrame {
    /// Stable machine-readable code (`model_not_found`, `queue_full`, ...).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

/// Response to an [`EncodeRequestFrame`], matched by `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodeResponseFrame {
    /// Echo of the request id.
    pub id: u64,
    /// Outcome of the encode on the node.
    pub result: Result<EncodeOkFrame, EncodeErrFrame>,
}

/// Per-model status carried inside a heartbeat acknowledgement.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStatusFrame {
    /// Model name.
    pub name: String,
    /// Bit width of this entry.
    pub bits: u8,
    /// Whether the decoded form is resident in the node's LRU.
    pub resident: bool,
    /// Decoded size in bytes (0 when evicted).
    pub decoded_bytes: u64,
}

/// A node's answer to a heartbeat: liveness plus load.
#[derive(Debug, Clone, PartialEq)]
pub struct HeartbeatAckFrame {
    /// Echo of the heartbeat sequence number.
    pub seq: u64,
    /// Current scheduler queue depth on the node.
    pub queue_depth: u32,
    /// Whether the node is draining (reject new work soon).
    pub draining: bool,
    /// Models known to the node's registry.
    pub models: Vec<ModelStatusFrame>,
}

/// All protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Router → node: encode this input.
    EncodeRequest(EncodeRequestFrame),
    /// Node → router: outcome of an encode.
    EncodeResponse(EncodeResponseFrame),
    /// Router → node: liveness probe.
    Heartbeat {
        /// Monotonic sequence number, echoed in the ack.
        seq: u64,
    },
    /// Node → router: liveness + load answer.
    HeartbeatAck(HeartbeatAckFrame),
    /// Router → node: stop accepting work, finish what is queued.
    Drain,
    /// Node → router: drain has begun.
    DrainAck,
}

impl Frame {
    /// The wire discriminant for this frame.
    pub fn kind(&self) -> u8 {
        match self {
            Frame::EncodeRequest(_) => KIND_ENCODE_REQUEST,
            Frame::EncodeResponse(_) => KIND_ENCODE_RESPONSE,
            Frame::Heartbeat { .. } => KIND_HEARTBEAT,
            Frame::HeartbeatAck(_) => KIND_HEARTBEAT_ACK,
            Frame::Drain => KIND_DRAIN,
            Frame::DrainAck => KIND_DRAIN_ACK,
        }
    }
}

// ---------------------------------------------------------------------------
// Payload writer
// ---------------------------------------------------------------------------

struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    fn new() -> Self {
        PayloadWriter { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn u32s(&mut self, v: &[u32]) {
        self.u32(v.len() as u32);
        for x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    fn f32s(&mut self, v: &[f32]) {
        self.u32(v.len() as u32);
        for x in v {
            // f32 travels as its exact bit pattern: byte-identity with a
            // direct in-process encode is a cluster invariant.
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
}

// ---------------------------------------------------------------------------
// Payload reader
// ---------------------------------------------------------------------------

struct PayloadReader<'a> {
    data: &'a [u8],
    pos: usize,
}

fn truncated(what: &str) -> ProtoError {
    ProtoError::Corrupt(format!("truncated payload while reading {what}"))
}

impl<'a> PayloadReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        PayloadReader { data, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or_else(|| truncated(what))?;
        let slice = self.data.get(self.pos..end).ok_or_else(|| truncated(what))?;
        self.pos = end;
        Ok(slice)
    }

    fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ProtoError> {
        let b = self.take(1, what)?;
        b.first().copied().ok_or_else(|| truncated(what))
    }

    fn bool(&mut self, what: &str) -> Result<bool, ProtoError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(ProtoError::Corrupt(format!("invalid boolean {v} while reading {what}"))),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, ProtoError> {
        let b = self.take(4, what)?;
        let arr: [u8; 4] = b.try_into().map_err(|_| truncated(what))?;
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ProtoError> {
        let b = self.take(8, what)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| truncated(what))?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Read a length prefix for elements of `elem_size` bytes, checking
    /// it against the bytes actually remaining so a corrupt length can
    /// never drive a huge allocation.
    fn len_prefix(&mut self, elem_size: usize, what: &str) -> Result<usize, ProtoError> {
        let n = self.u32(what)? as usize;
        let need = n.checked_mul(elem_size).ok_or_else(|| truncated(what))?;
        if need > self.remaining() {
            return Err(ProtoError::Corrupt(format!(
                "declared length {n} for {what} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn str(&mut self, what: &str) -> Result<String, ProtoError> {
        let n = self.len_prefix(1, what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::Corrupt(format!("invalid utf-8 in {what}")))
    }

    fn u32s(&mut self, what: &str) -> Result<Vec<u32>, ProtoError> {
        let n = self.len_prefix(4, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32(what)?);
        }
        Ok(out)
    }

    fn f32s(&mut self, what: &str) -> Result<Vec<f32>, ProtoError> {
        let n = self.len_prefix(4, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f32::from_bits(self.u32(what)?));
        }
        Ok(out)
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.remaining() != 0 {
            return Err(ProtoError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Frame encode/decode
// ---------------------------------------------------------------------------

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    match frame {
        Frame::EncodeRequest(req) => {
            w.u64(req.id);
            w.str(&req.model);
            w.u8(req.bits);
            w.u64(req.deadline_ms);
            w.u32s(&req.ids);
            w.u32s(&req.type_ids);
        }
        Frame::EncodeResponse(resp) => {
            w.u64(resp.id);
            match &resp.result {
                Ok(ok) => {
                    w.u8(1);
                    w.str(&ok.model);
                    w.u8(ok.bits);
                    w.u32s(&ok.dims);
                    w.f32s(&ok.hidden);
                    match &ok.pooled {
                        Some(p) => {
                            w.u8(1);
                            w.f32s(p);
                        }
                        None => w.u8(0),
                    }
                    w.u32(ok.batch_size);
                    w.u64(ok.queue_us);
                    w.u64(ok.compute_us);
                }
                Err(err) => {
                    w.u8(0);
                    w.str(&err.code);
                    w.str(&err.message);
                }
            }
        }
        Frame::Heartbeat { seq } => {
            w.u64(*seq);
        }
        Frame::HeartbeatAck(ack) => {
            w.u64(ack.seq);
            w.u32(ack.queue_depth);
            w.bool(ack.draining);
            w.u32(ack.models.len() as u32);
            for m in &ack.models {
                w.str(&m.name);
                w.u8(m.bits);
                w.bool(m.resident);
                w.u64(m.decoded_bytes);
            }
        }
        Frame::Drain | Frame::DrainAck => {}
    }
    w.buf
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, ProtoError> {
    let mut r = PayloadReader::new(payload);
    let frame = match kind {
        KIND_ENCODE_REQUEST => Frame::EncodeRequest(EncodeRequestFrame {
            id: r.u64("request id")?,
            model: r.str("model name")?,
            bits: r.u8("bits")?,
            deadline_ms: r.u64("deadline")?,
            ids: r.u32s("token ids")?,
            type_ids: r.u32s("type ids")?,
        }),
        KIND_ENCODE_RESPONSE => {
            let id = r.u64("response id")?;
            let ok_flag = r.bool("result flag")?;
            let result = if ok_flag {
                let model = r.str("model name")?;
                let bits = r.u8("bits")?;
                let dims = r.u32s("dims")?;
                let hidden = r.f32s("hidden")?;
                let pooled = if r.bool("pooled flag")? { Some(r.f32s("pooled")?) } else { None };
                Ok(EncodeOkFrame {
                    model,
                    bits,
                    dims,
                    hidden,
                    pooled,
                    batch_size: r.u32("batch size")?,
                    queue_us: r.u64("queue us")?,
                    compute_us: r.u64("compute us")?,
                })
            } else {
                Err(EncodeErrFrame { code: r.str("error code")?, message: r.str("error message")? })
            };
            Frame::EncodeResponse(EncodeResponseFrame { id, result })
        }
        KIND_HEARTBEAT => Frame::Heartbeat { seq: r.u64("heartbeat seq")? },
        KIND_HEARTBEAT_ACK => {
            let seq = r.u64("heartbeat seq")?;
            let queue_depth = r.u32("queue depth")?;
            let draining = r.bool("draining flag")?;
            // A model status is at least 14 bytes on the wire; the
            // cheaper per-byte bound of 1 still blocks absurd lengths.
            let n = r.len_prefix(1, "model list")?;
            let mut models = Vec::new();
            for _ in 0..n {
                models.push(ModelStatusFrame {
                    name: r.str("model name")?,
                    bits: r.u8("bits")?,
                    resident: r.bool("resident flag")?,
                    decoded_bytes: r.u64("decoded bytes")?,
                });
            }
            Frame::HeartbeatAck(HeartbeatAckFrame { seq, queue_depth, draining, models })
        }
        KIND_DRAIN => Frame::Drain,
        KIND_DRAIN_ACK => Frame::DrainAck,
        other => {
            return Err(ProtoError::Corrupt(format!("unknown frame kind {other}")));
        }
    };
    r.finish()?;
    Ok(frame)
}

/// Serialize one frame to `w`. The write is a single buffered flush so
/// a frame is never interleaved with another writer on the same stream
/// as long as callers hold the stream exclusively.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let payload = encode_payload(frame);
    let kind = frame.kind();
    let mut out = Vec::with_capacity(payload.len().saturating_add(14));
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    // CRC covers version|kind|payload (not the length prefix: a bad
    // length already shows up as truncation or a shifted CRC).
    let mut covered = Vec::with_capacity(payload.len().saturating_add(2));
    covered.push(PROTOCOL_VERSION);
    covered.push(kind);
    covered.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&covered).to_le_bytes());
    w.write_all(&out)?;
    w.flush()
}

/// Read one frame from `r`.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer
/// closed between frames); EOF anywhere inside a frame is
/// [`ProtoError::Corrupt`]. `max_payload` caps the declared payload
/// length before any allocation happens.
pub fn read_frame<R: Read>(r: &mut R, max_payload: u32) -> Result<Option<Frame>, ProtoError> {
    // Read the first magic byte by hand so we can tell "peer closed
    // cleanly" (zero bytes) apart from "frame cut short".
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    let mut magic_rest = [0u8; 3];
    read_exact_frame(r, &mut magic_rest, "magic")?;
    let [m0, m1, m2, m3] = MAGIC;
    if first != [m0] || magic_rest != [m1, m2, m3] {
        return Err(ProtoError::Corrupt("bad frame magic".to_string()));
    }

    let mut header = [0u8; 6];
    read_exact_frame(r, &mut header, "header")?;
    let version = header.first().copied().unwrap_or(0);
    if version != PROTOCOL_VERSION {
        return Err(ProtoError::Version(version));
    }
    let kind = header.get(1).copied().unwrap_or(0);
    let len_bytes: [u8; 4] = header.get(2..6).and_then(|s| s.try_into().ok()).unwrap_or([0; 4]);
    let len = u32::from_le_bytes(len_bytes);
    if len > max_payload {
        return Err(ProtoError::TooLarge { declared: len, limit: max_payload });
    }

    let mut payload = vec![0u8; len as usize];
    read_exact_frame(r, &mut payload, "payload")?;
    let mut crc_bytes = [0u8; 4];
    read_exact_frame(r, &mut crc_bytes, "crc")?;
    let got_crc = u32::from_le_bytes(crc_bytes);

    let mut covered = Vec::with_capacity(payload.len().saturating_add(2));
    covered.push(version);
    covered.push(kind);
    covered.extend_from_slice(&payload);
    let want_crc = crc32(&covered);
    if got_crc != want_crc {
        return Err(ProtoError::Corrupt(format!(
            "crc mismatch: frame says {got_crc:#010x}, computed {want_crc:#010x}"
        )));
    }

    fail_point!(
        "proto.frame.parse",
        ProtoError::Corrupt("injected proto.frame.parse fault".to_string())
    );
    decode_payload(kind, &payload).map(Some)
}

fn read_exact_frame<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<(), ProtoError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Corrupt(format!("frame truncated while reading {what}"))
        } else {
            ProtoError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::EncodeRequest(EncodeRequestFrame {
                id: 42,
                model: "MiniBert".to_string(),
                bits: 3,
                deadline_ms: 5000,
                ids: vec![101, 2023, 2003, 102],
                type_ids: vec![0, 0, 1, 1],
            }),
            Frame::EncodeResponse(EncodeResponseFrame {
                id: 42,
                result: Ok(EncodeOkFrame {
                    model: "MiniBert".to_string(),
                    bits: 3,
                    dims: vec![4, 8],
                    hidden: vec![0.5, -1.25, f32::MIN_POSITIVE, 3.0e-39, -0.0, 1234.5],
                    pooled: Some(vec![0.125, -7.5]),
                    batch_size: 8,
                    queue_us: 1200,
                    compute_us: 3400,
                }),
            }),
            Frame::EncodeResponse(EncodeResponseFrame {
                id: 7,
                result: Err(EncodeErrFrame {
                    code: "queue_full".to_string(),
                    message: "queue at capacity".to_string(),
                }),
            }),
            Frame::Heartbeat { seq: 99 },
            Frame::HeartbeatAck(HeartbeatAckFrame {
                seq: 99,
                queue_depth: 17,
                draining: false,
                models: vec![
                    ModelStatusFrame {
                        name: "MiniBert".to_string(),
                        bits: 3,
                        resident: true,
                        decoded_bytes: 1 << 20,
                    },
                    ModelStatusFrame {
                        name: "Tiny".to_string(),
                        bits: 4,
                        resident: false,
                        decoded_bytes: 0,
                    },
                ],
            }),
            Frame::Drain,
            Frame::DrainAck,
        ]
    }

    fn encode(frame: &Frame) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, frame).unwrap();
        buf
    }

    #[test]
    fn round_trip_all_frames() {
        for frame in sample_frames() {
            let bytes = encode(&frame);
            let mut cur = Cursor::new(bytes);
            let got = read_frame(&mut cur, MAX_PAYLOAD).unwrap().unwrap();
            assert_eq!(got, frame);
        }
    }

    #[test]
    fn f32_round_trip_is_bit_exact() {
        let weird = vec![
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
            f32::MIN_POSITIVE / 2.0, // subnormal
            f32::MAX,
        ];
        let frame = Frame::EncodeResponse(EncodeResponseFrame {
            id: 1,
            result: Ok(EncodeOkFrame {
                model: "m".to_string(),
                bits: 3,
                dims: vec![1, weird.len() as u32],
                hidden: weird.clone(),
                pooled: None,
                batch_size: 1,
                queue_us: 0,
                compute_us: 0,
            }),
        });
        let bytes = encode(&frame);
        let got = read_frame(&mut Cursor::new(bytes), MAX_PAYLOAD).unwrap().unwrap();
        match got {
            Frame::EncodeResponse(resp) => {
                let ok = resp.result.unwrap();
                assert_eq!(ok.hidden.len(), weird.len());
                for (a, b) in ok.hidden.iter().zip(weird.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn clean_eof_is_none() {
        let mut cur = Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut cur, MAX_PAYLOAD).unwrap().is_none());
    }

    #[test]
    fn multiple_frames_stream() {
        let mut buf = Vec::new();
        let frames = sample_frames();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for f in &frames {
            let got = read_frame(&mut cur, MAX_PAYLOAD).unwrap().unwrap();
            assert_eq!(&got, f);
        }
        assert!(read_frame(&mut cur, MAX_PAYLOAD).unwrap().is_none());
    }

    /// Flipping any single byte of an encoded frame must surface an
    /// error — never a panic, never a silently different frame.
    #[test]
    fn corruption_sweep_every_byte() {
        for frame in sample_frames() {
            let bytes = encode(&frame);
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0xA5;
                let res = read_frame(&mut Cursor::new(bad), MAX_PAYLOAD);
                assert!(res.is_err(), "byte {i} of {frame:?} flipped but decode returned {res:?}");
            }
        }
    }

    /// Truncating an encoded frame at any interior byte must error
    /// (only a cut at offset 0 is a clean EOF).
    #[test]
    fn truncation_sweep_every_prefix() {
        for frame in sample_frames() {
            let bytes = encode(&frame);
            for cut in 0..bytes.len() {
                let res = read_frame(&mut Cursor::new(bytes[..cut].to_vec()), MAX_PAYLOAD);
                if cut == 0 {
                    assert!(matches!(res, Ok(None)), "cut=0 gave {res:?}");
                } else {
                    assert!(res.is_err(), "cut={cut} of {frame:?} gave {res:?}");
                }
            }
        }
    }

    #[test]
    fn oversized_payload_rejected_before_allocation() {
        let frame = Frame::Heartbeat { seq: 1 };
        let mut bytes = encode(&frame);
        // Rewrite the length prefix to something absurd; the declared
        // length alone must trip the limit.
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let res = read_frame(&mut Cursor::new(bytes), MAX_PAYLOAD);
        assert!(matches!(res, Err(ProtoError::TooLarge { .. })), "{res:?}");
    }

    #[test]
    fn small_payload_cap_applies() {
        let frame = Frame::EncodeRequest(EncodeRequestFrame {
            id: 1,
            model: "m".to_string(),
            bits: 0,
            deadline_ms: 0,
            ids: vec![0; 100],
            type_ids: vec![],
        });
        let bytes = encode(&frame);
        let res = read_frame(&mut Cursor::new(bytes), 16);
        assert!(matches!(res, Err(ProtoError::TooLarge { .. })), "{res:?}");
    }

    #[test]
    fn unknown_version_rejected() {
        let mut bytes = encode(&Frame::Drain);
        bytes[4] = 9; // version byte
                      // Fix up the CRC so only the version check can fire.
        let len = bytes.len();
        let mut covered = vec![bytes[4], bytes[5]];
        covered.extend_from_slice(&bytes[10..len - 4]);
        let crc = crc32(&covered);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        let res = read_frame(&mut Cursor::new(bytes), MAX_PAYLOAD);
        assert!(matches!(res, Err(ProtoError::Version(9))), "{res:?}");
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut bytes = encode(&Frame::Drain);
        bytes[5] = 200; // kind byte
        let len = bytes.len();
        let mut covered = vec![bytes[4], bytes[5]];
        covered.extend_from_slice(&bytes[10..len - 4]);
        let crc = crc32(&covered);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        let res = read_frame(&mut Cursor::new(bytes), MAX_PAYLOAD);
        assert!(matches!(res, Err(ProtoError::Corrupt(_))), "{res:?}");
    }

    #[test]
    fn trailing_garbage_in_payload_rejected() {
        // Hand-build a heartbeat with 4 extra payload bytes and a valid
        // CRC: structure decode must still reject it.
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.extend_from_slice(&[1, 2, 3, 4]);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(PROTOCOL_VERSION);
        bytes.push(3); // heartbeat
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let mut covered = vec![PROTOCOL_VERSION, 3];
        covered.extend_from_slice(&payload);
        let crc = crc32(&covered);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let res = read_frame(&mut Cursor::new(bytes), MAX_PAYLOAD);
        assert!(matches!(res, Err(ProtoError::Corrupt(_))), "{res:?}");
    }

    /// A reader that returns one byte per read call: read_frame must
    /// reassemble frames across arbitrarily fragmented reads.
    struct OneByteReader {
        data: Vec<u8>,
        pos: usize,
    }

    impl std::io::Read for OneByteReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn fragmented_reads_reassemble() {
        let mut buf = Vec::new();
        for f in sample_frames() {
            write_frame(&mut buf, &f).unwrap();
        }
        let mut r = OneByteReader { data: buf, pos: 0 };
        for f in sample_frames() {
            let got = read_frame(&mut r, MAX_PAYLOAD).unwrap().unwrap();
            assert_eq!(got, f);
        }
        assert!(read_frame(&mut r, MAX_PAYLOAD).unwrap().is_none());
    }

    #[test]
    fn parse_failpoint_injects_error() {
        gobo_fault::reset();
        gobo_fault::configure_str("proto.frame.parse=error").unwrap();
        let bytes = encode(&Frame::Drain);
        let res = read_frame(&mut Cursor::new(bytes), MAX_PAYLOAD);
        gobo_fault::reset();
        assert!(matches!(res, Err(ProtoError::Corrupt(_))), "{res:?}");
    }
}
