//! Connection discipline shared by every protocol client.
//!
//! A node restart looks like `ConnectionRefused` for the few
//! milliseconds between the old listener dying and the new one
//! binding. Those failures happen *before any bytes are written*, so
//! retrying them is always safe — the request was never seen by the
//! peer. [`connect_retry`] retries exactly that class of failure with
//! capped exponential backoff plus deterministic SplitMix64 jitter
//! (same seed → same schedule, so chaos runs replay).

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// SplitMix64 mixer — the workspace's standard cheap deterministic
/// hash, reused here for backoff jitter.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Retry schedule for transient connect failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total connect attempts (1 = no retry).
    pub attempts: u32,
    /// Base backoff before the second attempt; doubles per attempt.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Jitter seed; a fixed seed replays the same sleep schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
            seed: 0x60B0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy { attempts: 1, ..RetryPolicy::default() }
    }

    /// The sleep before attempt `attempt + 1` (0-based): capped
    /// exponential with deterministic jitter in `[0, backoff/2)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX));
        let capped = exp.min(self.cap);
        let half = capped / 2;
        if half.is_zero() {
            return capped;
        }
        let jitter_us = splitmix64(self.seed ^ u64::from(attempt)) % half.as_micros().max(1) as u64;
        (capped - half).saturating_add(Duration::from_micros(jitter_us))
    }

    /// Whether an I/O error kind is a *transient connect* failure —
    /// one that happened before any bytes were written, so a retry can
    /// never duplicate work on the peer.
    pub fn is_transient(kind: io::ErrorKind) -> bool {
        matches!(
            kind,
            io::ErrorKind::ConnectionRefused
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
        )
    }
}

fn resolve_one(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("address `{addr}` resolved to nothing"))
    })
}

/// Connect to `addr`, retrying transient failures (refused / reset /
/// aborted — all strictly before any bytes are written) according to
/// `policy`. Non-transient errors and exhausted attempts return the
/// last error.
pub fn connect_retry(
    addr: &str,
    connect_timeout: Duration,
    policy: &RetryPolicy,
) -> io::Result<TcpStream> {
    let attempts = policy.attempts.max(1);
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(policy.backoff(attempt - 1));
        }
        // Re-resolve each attempt: a restarting node may come back on a
        // fresh address record.
        let sockaddr = resolve_one(addr)?;
        match TcpStream::connect_timeout(&sockaddr, connect_timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) if RetryPolicy::is_transient(e.kind()) => last_err = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("connect_retry: no attempts made")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = RetryPolicy::default();
        for attempt in 0..10 {
            let a = p.backoff(attempt);
            let b = p.backoff(attempt);
            assert_eq!(a, b, "same attempt must give the same sleep");
            assert!(a <= p.cap, "backoff {a:?} exceeds cap {:?}", p.cap);
        }
        // Different seeds shift the jitter.
        let p2 = RetryPolicy { seed: 99, ..p };
        assert!((0..10).any(|i| p.backoff(i) != p2.backoff(i)));
    }

    #[test]
    fn backoff_grows_until_cap() {
        let p = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(4),
            cap: Duration::from_millis(64),
            seed: 1,
        };
        // Floor of the jittered range is capped/2; the floor itself
        // must be monotone non-decreasing up to the cap.
        let floors: Vec<Duration> = (0..8)
            .map(|i| {
                let exp = p.base.saturating_mul(1 << i);
                exp.min(p.cap) / 2
            })
            .collect();
        for w in floors.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*floors.last().unwrap(), p.cap / 2);
    }

    #[test]
    fn connect_succeeds_against_live_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stream = connect_retry(&addr, Duration::from_secs(1), &RetryPolicy::default());
        assert!(stream.is_ok(), "{stream:?}");
    }

    #[test]
    fn connect_retries_until_listener_appears() {
        // Reserve a port, free it, then bind it back after a delay from
        // another thread: the first attempts get ConnectionRefused and
        // the retry loop must ride them out.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            let listener = TcpListener::bind(addr).expect("rebind reserved port");
            // Hold the listener long enough for the connect to land.
            let _ = listener.accept();
        });
        let policy = RetryPolicy {
            attempts: 10,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(50),
            seed: 7,
        };
        let result = connect_retry(&addr.to_string(), Duration::from_secs(1), &policy);
        assert!(result.is_ok(), "{result:?}");
        drop(result);
        handle.join().unwrap();
    }

    #[test]
    fn permanent_refusal_exhausts_attempts() {
        // Bind-then-drop: nothing listens on this port now.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let policy = RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 3,
        };
        let result = connect_retry(&addr, Duration::from_millis(200), &policy);
        assert!(result.is_err());
    }

    #[test]
    fn unresolvable_address_fails_fast() {
        let result = connect_retry(
            "definitely-not-a-host.invalid:1",
            Duration::from_millis(100),
            &RetryPolicy::default(),
        );
        assert!(result.is_err());
    }
}
