//! `gobo-proto`: the versioned wire protocol of the `gobo-cluster`
//! serving tier.
//!
//! The router and the nodes live in different processes (often on
//! different hosts), so the protocol is its own crate: both sides stay
//! independently testable against the same frame codec, and neither
//! drags the other's dependencies along.
//!
//! # Frame format
//!
//! Every message is one length-prefixed frame:
//!
//! ```text
//! magic   4 B   "GOBP"
//! version 1 B   currently 1
//! kind    1 B   frame discriminant
//! length  4 B   payload length, little endian
//! payload       kind-specific binary payload
//! crc32   4 B   CRC-32 (IEEE, reflected) over version|kind|payload
//! ```
//!
//! The trailing CRC reuses [`gobo_quant::integrity::crc32`] — the same
//! polynomial that seals `.gobom` containers — so a bit flip anywhere
//! between the version byte and the last payload byte is detected
//! before a single field is interpreted. Decoding is panic-free and
//! bounded: payloads larger than the caller's limit are rejected from
//! the length prefix alone, before any allocation.
//!
//! The [`net`] module carries the client-side connection discipline
//! (capped jittered retry of *transient* connect failures) that the
//! router and the HTTP client share.

#![deny(missing_docs)]

pub mod frame;
pub mod net;

pub use frame::{
    read_frame, write_frame, EncodeErrFrame, EncodeOkFrame, EncodeRequestFrame,
    EncodeResponseFrame, Frame, HeartbeatAckFrame, ModelStatusFrame, ProtoError, MAX_PAYLOAD,
    PROTOCOL_VERSION,
};
pub use net::{connect_retry, splitmix64, RetryPolicy};
