//! Dense FP32 tensors for the GOBO reproduction.
//!
//! This crate is the numeric substrate beneath the transformer models,
//! the autograd engine and the quantization experiments. It provides an
//! owned, row-major, `f32` tensor together with the small set of
//! operations a BERT-style encoder needs:
//!
//! * shaped construction and seeded random fills ([`Tensor`]),
//! * 2-D and batched matrix multiplication ([`linalg`]),
//! * row-wise softmax / log-softmax and reductions ([`reduce`]),
//! * layer normalization ([`norm`]),
//! * GELU / tanh / sigmoid activations ([`activation`]),
//! * embedding-row gathering ([`embed`]).
//!
//! The design is deliberately simple — owned buffers, no views, no
//! generic element type — because the paper's workloads only ever touch
//! contiguous FP32 weight matrices, and the quantization algorithms in
//! `gobo-quant` operate on plain `&[f32]` slices exported by
//! [`Tensor::as_slice`].
//!
//! # Example
//!
//! ```
//! use gobo_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok::<(), gobo_tensor::TensorError>(())
//! ```

#![deny(missing_docs)]

pub mod activation;
pub mod embed;
pub mod error;
pub mod linalg;
pub mod norm;
pub mod reduce;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;
