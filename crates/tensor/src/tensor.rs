//! The owned, row-major FP32 tensor.

use crate::error::TensorError;
use crate::shape::Shape;

/// An owned, row-major tensor of `f32` values.
///
/// All arithmetic helpers that combine two tensors require identical
/// shapes and return [`TensorError::ShapeMismatch`] otherwise; see
/// [`crate::linalg`] for matrix products.
///
/// # Example
///
/// ```
/// use gobo_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCount`] when `data.len()` differs from
    /// the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(TensorError::ElementCount { got: data.len(), expected: shape.len() });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::scalar(), data: vec![value] }
    }

    /// Creates a tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor { shape, data: vec![0.0; len] }
    }

    /// Creates a tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor { shape, data: vec![value; len] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes, shorthand for `shape().dims()`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying elements in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying elements in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates indexing errors from [`Shape::offset`].
    pub fn get(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates indexing errors from [`Shape::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a copy with a new shape over the same elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCount`] when the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Tensor { shape: self.shape.clone(), data })
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Adds a 1-D bias row to every row of a matrix-like tensor.
    ///
    /// The tensor is viewed as `(rows, cols)` via [`Shape::as_matrix`]; the
    /// bias must have `cols` elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the bias length differs
    /// from the column count, or a rank error for rank-0 tensors.
    pub fn add_bias(&self, bias: &Tensor) -> Result<Tensor, TensorError> {
        let (rows, cols) = self.shape.as_matrix()?;
        if bias.len() != cols {
            return Err(TensorError::ShapeMismatch {
                op: "add_bias",
                lhs: self.dims().to_vec(),
                rhs: bias.dims().to_vec(),
            });
        }
        let mut out = self.clone();
        for r in 0..rows {
            for c in 0..cols {
                out.data[r * cols + c] += bias.data[c];
            }
        }
        Ok(out)
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for tensors that are not rank 2.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                got: self.shape.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut data = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                data[c * rows + r] = self.data[r * cols + c];
            }
        }
        Ok(Tensor { shape: Shape::new(&[cols, rows]), data })
    }

    /// Copies row `row` of a matrix-like tensor into a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when `row` exceeds the row
    /// count, or a rank error for rank-0 tensors.
    pub fn row(&self, row: usize) -> Result<Tensor, TensorError> {
        let (rows, cols) = self.shape.as_matrix()?;
        if row >= rows {
            return Err(TensorError::IndexOutOfBounds { index: row, len: rows });
        }
        let data = self.data[row * cols..(row + 1) * cols].to_vec();
        Ok(Tensor { shape: Shape::new(&[cols]), data })
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements; 0 for empty tensors.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest element; `None` for empty tensors.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::max)
    }

    /// Smallest element; `None` for empty tensors.
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::min)
    }

    /// Returns `true` when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl FromIterator<f32> for Tensor {
    /// Collects into a rank-1 tensor.
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        let n = data.len();
        Tensor { shape: Shape::new(&[n]), data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_count() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(i.get(&[0, 1]).unwrap(), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn zip_requires_same_shape() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn add_sub_mul_scale() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[11.0, 22.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[9.0, 18.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[10.0, 40.0]);
        assert_eq!(a.scale(3.0).as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.get(&[2, 1]).unwrap(), a.get(&[1, 2]).unwrap());
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn transpose_requires_rank2() {
        assert!(Tensor::zeros(&[2, 2, 2]).transpose().is_err());
    }

    #[test]
    fn add_bias_broadcasts_over_rows() {
        let x = Tensor::zeros(&[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let y = x.add_bias(&b).unwrap();
        assert_eq!(y.row(0).unwrap().as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(y.row(1).unwrap().as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_extraction_and_bounds() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(a.row(1).unwrap().as_slice(), &[3.0, 4.0]);
        assert!(a.row(2).is_err());
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![-1.0, 4.0, 2.0], &[3]).unwrap();
        assert_eq!(a.sum(), 5.0);
        assert!((a.mean() - 5.0 / 3.0).abs() < 1e-6);
        assert_eq!(a.max(), Some(4.0));
        assert_eq!(a.min(), Some(-1.0));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Tensor::zeros(&[2]);
        assert!(a.all_finite());
        a.as_mut_slice()[0] = f32::NAN;
        assert!(!a.all_finite());
    }

    #[test]
    fn from_iterator_builds_vector() {
        let t: Tensor = (0..4).map(|x| x as f32).collect();
        assert_eq!(t.dims(), &[4]);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn map_and_map_inplace_agree() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        let mapped = a.map(f32::abs);
        let mut b = a.clone();
        b.map_inplace(f32::abs);
        assert_eq!(mapped, b);
    }

    #[test]
    fn scalar_tensor() {
        let s = Tensor::scalar(5.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.sum(), 5.0);
        assert_eq!(s.shape().rank(), 0);
    }
}
