//! Layer normalization.
//!
//! Every BERT sub-block ends in a LayerNorm; GOBO leaves these FP32 (as do
//! Q8BERT and Q-BERT), but the forward pass still needs them.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Default epsilon used by the BERT reference implementation.
pub const LAYER_NORM_EPS: f32 = 1e-12;

impl Tensor {
    /// Layer normalization along the last axis with learned `gamma`
    /// (scale) and `beta` (shift).
    ///
    /// Each row is normalized to zero mean and unit variance, then scaled
    /// and shifted: `y = gamma · (x - mean) / sqrt(var + eps) + beta`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `gamma` and `beta`
    /// both have as many elements as the last axis, and
    /// [`TensorError::EmptyDimension`] for empty rows.
    ///
    /// # Example
    ///
    /// ```
    /// use gobo_tensor::Tensor;
    /// let x = Tensor::from_vec(vec![1.0, 3.0], &[1, 2])?;
    /// let gamma = Tensor::ones(&[2]);
    /// let beta = Tensor::zeros(&[2]);
    /// let y = x.layer_norm(&gamma, &beta, 1e-12)?;
    /// assert!((y.as_slice()[0] + 1.0).abs() < 1e-3);
    /// assert!((y.as_slice()[1] - 1.0).abs() < 1e-3);
    /// # Ok::<(), gobo_tensor::TensorError>(())
    /// ```
    pub fn layer_norm(
        &self,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f32,
    ) -> Result<Tensor, TensorError> {
        let (rows, cols) = self.shape().as_matrix()?;
        if cols == 0 {
            return Err(TensorError::EmptyDimension { op: "layer_norm" });
        }
        if gamma.len() != cols || beta.len() != cols {
            return Err(TensorError::ShapeMismatch {
                op: "layer_norm",
                lhs: self.dims().to_vec(),
                rhs: vec![gamma.len(), beta.len()],
            });
        }
        let mut out = self.clone();
        let data = out.as_mut_slice();
        let g = gamma.as_slice();
        let b = beta.as_slice();
        for r in 0..rows {
            let row = &mut data[r * cols..(r + 1) * cols];
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (c, v) in row.iter_mut().enumerate() {
                *v = g[c] * (*v - mean) * inv + b[c];
            }
        }
        Ok(out)
    }
}

/// Statistics of one layer-norm row, exposed for backpropagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowMoments {
    /// Row mean.
    pub mean: f32,
    /// Row variance (population, i.e. divided by `n`).
    pub var: f32,
}

/// Computes per-row mean and variance of a matrix-like tensor.
///
/// # Errors
///
/// Returns [`TensorError::EmptyDimension`] for empty rows, or a rank error
/// for rank-0 tensors.
pub fn row_moments(x: &Tensor) -> Result<Vec<RowMoments>, TensorError> {
    let (rows, cols) = x.shape().as_matrix()?;
    if cols == 0 {
        return Err(TensorError::EmptyDimension { op: "row_moments" });
    }
    let data = x.as_slice();
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        let mean = row.iter().sum::<f32>() / cols as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
        out.push(RowMoments { mean, var });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_rows_have_zero_mean_unit_var() {
        let x =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[2, 4]).unwrap();
        let y = x.layer_norm(&Tensor::ones(&[4]), &Tensor::zeros(&[4]), LAYER_NORM_EPS).unwrap();
        for m in row_moments(&y).unwrap() {
            assert!(m.mean.abs() < 1e-5);
            assert!((m.var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn gamma_beta_scale_and_shift() {
        let x = Tensor::from_vec(vec![1.0, 3.0], &[1, 2]).unwrap();
        let gamma = Tensor::full(&[2], 2.0);
        let beta = Tensor::full(&[2], 1.0);
        let y = x.layer_norm(&gamma, &beta, LAYER_NORM_EPS).unwrap();
        // Normalized values are [-1, 1]; scaled/shifted: [-1, 3].
        assert!((y.as_slice()[0] + 1.0).abs() < 1e-3);
        assert!((y.as_slice()[1] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn constant_rows_stay_finite() {
        let x = Tensor::full(&[1, 8], 7.0);
        let y = x.layer_norm(&Tensor::ones(&[8]), &Tensor::zeros(&[8]), LAYER_NORM_EPS).unwrap();
        assert!(y.all_finite());
        assert!(y.as_slice().iter().all(|v| v.abs() < 1e-3));
    }

    #[test]
    fn mismatched_gamma_rejected() {
        let x = Tensor::zeros(&[2, 4]);
        assert!(x.layer_norm(&Tensor::ones(&[3]), &Tensor::zeros(&[4]), 1e-12).is_err());
    }

    #[test]
    fn row_moments_known_values() {
        let x = Tensor::from_vec(vec![1.0, 3.0], &[1, 2]).unwrap();
        let m = row_moments(&x).unwrap();
        assert_eq!(m[0].mean, 2.0);
        assert_eq!(m[0].var, 1.0);
    }
}
