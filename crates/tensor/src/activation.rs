//! Scalar activation functions and their derivatives.
//!
//! BERT uses GELU in the intermediate FC and tanh in the pooler. The
//! derivatives live here too so `gobo-train` can backpropagate through
//! them without duplicating the math.

use crate::tensor::Tensor;

/// Gaussian Error Linear Unit using the tanh approximation from the BERT
/// reference implementation:
/// `0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`.
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`] with respect to its input.
pub fn gelu_grad(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = SQRT_2_OVER_PI * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * 0.044715 * x * x)
}

/// Rectified linear unit.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of [`relu`]; the subgradient at 0 is taken as 0.
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Logistic sigmoid `1 / (1 + e^{-x})`.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Derivative of [`sigmoid`] with respect to its input.
pub fn sigmoid_grad(x: f32) -> f32 {
    let s = sigmoid(x);
    s * (1.0 - s)
}

/// Derivative of `tanh` with respect to its input.
pub fn tanh_grad(x: f32) -> f32 {
    let t = x.tanh();
    1.0 - t * t
}

impl Tensor {
    /// Applies [`gelu`] element-wise.
    pub fn gelu(&self) -> Tensor {
        self.map(gelu)
    }

    /// Applies [`relu`] element-wise.
    pub fn relu(&self) -> Tensor {
        self.map(relu)
    }

    /// Applies `tanh` element-wise.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Applies [`sigmoid`] element-wise.
    pub fn sigmoid(&self) -> Tensor {
        self.map(sigmoid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(f32) -> f32, x: f32) -> f32 {
        let h = 1e-3;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn gelu_known_values() {
        assert_eq!(gelu(0.0), 0.0);
        // GELU(x) → x for large positive x, → 0 for large negative x.
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
        // Reference value: gelu(1.0) ≈ 0.8412.
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0] {
            let analytic = gelu_grad(x);
            let numeric = finite_diff(gelu, x);
            assert!((analytic - numeric).abs() < 1e-2, "x={x}: {analytic} vs {numeric}");
        }
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
        assert_eq!(relu_grad(-1.0), 0.0);
        assert_eq!(relu_grad(1.0), 1.0);
    }

    #[test]
    fn sigmoid_symmetry_and_grad() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
        for &x in &[-2.0f32, 0.0, 2.0] {
            assert!((sigmoid_grad(x) - finite_diff(sigmoid, x)).abs() < 1e-3);
        }
    }

    #[test]
    fn tanh_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.5, 2.0] {
            assert!((tanh_grad(x) - finite_diff(f32::tanh, x)).abs() < 1e-3);
        }
    }

    #[test]
    fn tensor_wrappers_apply_elementwise() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 1.0], &[3]).unwrap();
        assert_eq!(x.relu().as_slice(), &[0.0, 0.0, 1.0]);
        let g = x.gelu();
        assert_eq!(g.as_slice()[1], 0.0);
        assert!(g.as_slice()[0] < 0.0 && g.as_slice()[2] > 0.0);
        assert!((x.sigmoid().as_slice()[1] - 0.5).abs() < 1e-6);
        assert!((x.tanh().as_slice()[2] - 1.0f32.tanh()).abs() < 1e-6);
    }
}
