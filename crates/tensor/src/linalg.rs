//! Matrix products.
//!
//! BERT inference is dominated by `activation × weightᵀ` products, so this
//! module provides a cache-blocked 2-D matmul, a transposed variant that
//! avoids materializing `Wᵀ`, and a batched form used by multi-head
//! attention.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Block edge used by the cache-blocked kernels, chosen so three blocks of
/// `f32` fit comfortably in a typical 32 KiB L1 cache.
const BLOCK: usize = 48;

impl Tensor {
    /// Matrix product `self × rhs` of two rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank
    /// 2, and [`TensorError::ShapeMismatch`] unless the inner dimensions
    /// agree.
    ///
    /// # Example
    ///
    /// ```
    /// use gobo_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&b)?.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    /// # Ok::<(), gobo_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let (m, k, n) = check_matmul_dims("matmul", self, rhs, false)?;
        let mut out = vec![0.0f32; m * n];
        matmul_blocked(self.as_slice(), rhs.as_slice(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product `self × rhsᵀ` without materializing the transpose.
    ///
    /// `rhs` has shape `(n, k)`; the result has shape `(m, n)`. This is the
    /// natural layout for FC layers whose weights are stored as
    /// `(out_features, in_features)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank
    /// 2, and [`TensorError::ShapeMismatch`] unless both operands share the
    /// same number of columns.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let (m, k, n) = check_matmul_dims("matmul_nt", self, rhs, true)?;
        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = vec![0.0f32; m * n];
        // Row-times-row dot products are already cache friendly: both
        // operands stream contiguously.
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let br = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += ar[p] * br[p];
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Batched matrix product of two rank-3 tensors with equal batch size.
    ///
    /// `self` is `(b, m, k)`, `rhs` is `(b, k, n)`; the result is
    /// `(b, m, n)`. Used for per-head attention score and context products.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank
    /// 3, and [`TensorError::ShapeMismatch`] unless batch and inner
    /// dimensions agree.
    pub fn batch_matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        if self.shape().rank() != 3 {
            return Err(TensorError::RankMismatch {
                op: "batch_matmul",
                expected: 3,
                got: self.shape().rank(),
            });
        }
        if rhs.shape().rank() != 3 {
            return Err(TensorError::RankMismatch {
                op: "batch_matmul",
                expected: 3,
                got: rhs.shape().rank(),
            });
        }
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (rhs.dims()[0], rhs.dims()[1], rhs.dims()[2]);
        if b != b2 || k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "batch_matmul",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; b * m * n];
        for batch in 0..b {
            let a_off = batch * m * k;
            let b_off = batch * k * n;
            let o_off = batch * m * n;
            matmul_blocked(
                &self.as_slice()[a_off..a_off + m * k],
                &rhs.as_slice()[b_off..b_off + k * n],
                &mut out[o_off..o_off + m * n],
                m,
                k,
                n,
            );
        }
        Ok(Tensor::from_vec(out, &[b, m, n]).expect("sized above"))
    }

    /// Dot product of two rank-1 tensors of equal length.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the lengths differ.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32, TensorError> {
        if self.len() != rhs.len() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        Ok(self.as_slice().iter().zip(rhs.as_slice()).map(|(&a, &b)| a * b).sum())
    }
}

fn check_matmul_dims(
    op: &'static str,
    lhs: &Tensor,
    rhs: &Tensor,
    transposed: bool,
) -> Result<(usize, usize, usize), TensorError> {
    if lhs.shape().rank() != 2 {
        return Err(TensorError::RankMismatch { op, expected: 2, got: lhs.shape().rank() });
    }
    if rhs.shape().rank() != 2 {
        return Err(TensorError::RankMismatch { op, expected: 2, got: rhs.shape().rank() });
    }
    let (m, k) = (lhs.dims()[0], lhs.dims()[1]);
    let (n, inner_ok) = if transposed {
        (rhs.dims()[0], rhs.dims()[1] == k)
    } else {
        (rhs.dims()[1], rhs.dims()[0] == k)
    };
    if !inner_ok {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: lhs.dims().to_vec(),
            rhs: rhs.dims().to_vec(),
        });
    }
    Ok((m, k, n))
}

/// Cache-blocked `C += A × B` over contiguous row-major slices.
///
/// `out` must be zero-initialized by the caller (the public wrappers do
/// this); blocking over `k` accumulates partial sums directly into `out`.
fn matmul_blocked(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let p1 = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    for p in p0..p1 {
                        let av = a[i * k + p];
                        if av == 0.0 {
                            continue;
                        }
                        let brow = &b[p * n + j0..p * n + j1];
                        let orow = &mut out[i * n + j0..i * n + j1];
                        for (o, &bv) in orow.iter_mut().zip(brow) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Stacks rank-1 tensors into a rank-2 matrix, one tensor per row.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless every row has the same
/// length, and [`TensorError::EmptyDimension`] for an empty input.
pub fn stack_rows(rows: &[Tensor]) -> Result<Tensor, TensorError> {
    let first = rows.first().ok_or(TensorError::EmptyDimension { op: "stack_rows" })?;
    let cols = first.len();
    let mut data = Vec::with_capacity(rows.len() * cols);
    for r in rows {
        if r.len() != cols {
            return Err(TensorError::ShapeMismatch {
                op: "stack_rows",
                lhs: first.dims().to_vec(),
                rhs: r.dims().to_vec(),
            });
        }
        data.extend_from_slice(r.as_slice());
    }
    Ok(Tensor::from_vec(data, &[rows.len(), cols]).expect("sized above"))
}

/// Splits the columns of a `(rows, heads·head_dim)` matrix into
/// `(heads, rows, head_dim)`, the layout used by multi-head attention.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless the column count is
/// divisible by `heads`, or a rank error when `x` is not rank 2.
pub fn split_heads(x: &Tensor, heads: usize) -> Result<Tensor, TensorError> {
    if x.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "split_heads",
            expected: 2,
            got: x.shape().rank(),
        });
    }
    let (rows, cols) = (x.dims()[0], x.dims()[1]);
    if heads == 0 || cols % heads != 0 {
        return Err(TensorError::ShapeMismatch {
            op: "split_heads",
            lhs: x.dims().to_vec(),
            rhs: vec![heads],
        });
    }
    let hd = cols / heads;
    let mut data = vec![0.0f32; rows * cols];
    let src = x.as_slice();
    for h in 0..heads {
        for r in 0..rows {
            let dst = h * rows * hd + r * hd;
            let from = r * cols + h * hd;
            data[dst..dst + hd].copy_from_slice(&src[from..from + hd]);
        }
    }
    Ok(Tensor::from_vec(data, &[heads, rows, hd]).expect("sized above"))
}

/// Inverse of [`split_heads`]: merges `(heads, rows, head_dim)` back into
/// `(rows, heads·head_dim)`.
///
/// # Errors
///
/// Returns a rank error when `x` is not rank 3.
pub fn merge_heads(x: &Tensor) -> Result<Tensor, TensorError> {
    if x.shape().rank() != 3 {
        return Err(TensorError::RankMismatch {
            op: "merge_heads",
            expected: 3,
            got: x.shape().rank(),
        });
    }
    let (heads, rows, hd) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    let cols = heads * hd;
    let mut data = vec![0.0f32; rows * cols];
    let src = x.as_slice();
    for h in 0..heads {
        for r in 0..rows {
            let from = h * rows * hd + r * hd;
            let dst = r * cols + h * hd;
            data[dst..dst + hd].copy_from_slice(&src[from..from + hd]);
        }
    }
    Ok(Tensor::from_vec(data, &[rows, cols]).expect("sized above"))
}

/// Transposes the last two axes of a rank-3 tensor: `(b, m, n)` →
/// `(b, n, m)`. Used to form `Kᵀ` per attention head.
///
/// # Errors
///
/// Returns a rank error when `x` is not rank 3.
pub fn transpose_batched(x: &Tensor) -> Result<Tensor, TensorError> {
    if x.shape().rank() != 3 {
        return Err(TensorError::RankMismatch {
            op: "transpose_batched",
            expected: 3,
            got: x.shape().rank(),
        });
    }
    let (b, m, n) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    let mut data = vec![0.0f32; b * m * n];
    let src = x.as_slice();
    for batch in 0..b {
        for i in 0..m {
            for j in 0..n {
                data[batch * m * n + j * m + i] = src[batch * m * n + i * n + j];
            }
        }
    }
    Ok(Tensor::from_vec(data, &[b, n, m]).expect("sized above"))
}

/// Frobenius (L2) norm of all elements.
pub fn frobenius_norm(x: &Tensor) -> f32 {
    x.as_slice().iter().map(|&v| v * v).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(a.matmul(&b).unwrap().as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_mismatched_inner() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = t((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let w = t((0..8).map(|x| (x as f32) * 0.5 - 2.0).collect(), &[2, 4]);
        let via_nt = a.matmul_nt(&w).unwrap();
        let via_t = a.matmul(&w.transpose().unwrap()).unwrap();
        assert_eq!(via_nt, via_t);
    }

    #[test]
    fn blocked_matmul_matches_naive_on_large_sizes() {
        // Cross the BLOCK boundary to exercise all block-edge paths.
        let m = 53;
        let k = 61;
        let n = 50;
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7919) % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 104729) % 11) as f32 - 5.0).collect();
        let ta = t(a.clone(), &[m, k]);
        let tb = t(b.clone(), &[k, n]);
        let fast = ta.matmul(&tb).unwrap();
        // Naive reference.
        let mut naive = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                naive[i * n + j] = acc;
            }
        }
        for (x, y) in fast.as_slice().iter().zip(&naive) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn batch_matmul_per_batch() {
        let a = t(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let b = t(vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], &[2, 2, 2]);
        let c = a.batch_matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2, 2]);
        assert_eq!(&c.as_slice()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&c.as_slice()[4..], &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn batch_matmul_rejects_mismatched_batch() {
        let a = Tensor::zeros(&[2, 2, 2]);
        let b = Tensor::zeros(&[3, 2, 2]);
        assert!(a.batch_matmul(&b).is_err());
    }

    #[test]
    fn dot_product() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let b = t(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert!(a.dot(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let rows = vec![t(vec![1.0, 2.0], &[2]), t(vec![3.0, 4.0], &[2])];
        let m = stack_rows(&rows).unwrap();
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(stack_rows(&[]).is_err());
        let ragged = vec![t(vec![1.0], &[1]), t(vec![1.0, 2.0], &[2])];
        assert!(stack_rows(&ragged).is_err());
    }

    #[test]
    fn split_and_merge_heads_round_trip() {
        let x = t((0..24).map(|v| v as f32).collect(), &[3, 8]);
        let split = split_heads(&x, 2).unwrap();
        assert_eq!(split.dims(), &[2, 3, 4]);
        // Head 0 of row 0 is the first 4 columns.
        assert_eq!(&split.as_slice()[..4], &[0.0, 1.0, 2.0, 3.0]);
        let merged = merge_heads(&split).unwrap();
        assert_eq!(merged, x);
    }

    #[test]
    fn split_heads_rejects_indivisible() {
        let x = Tensor::zeros(&[2, 7]);
        assert!(split_heads(&x, 2).is_err());
        assert!(split_heads(&x, 0).is_err());
    }

    #[test]
    fn transpose_batched_swaps_last_axes() {
        let x = t((0..12).map(|v| v as f32).collect(), &[2, 2, 3]);
        let tx = transpose_batched(&x).unwrap();
        assert_eq!(tx.dims(), &[2, 3, 2]);
        assert_eq!(tx.get(&[0, 2, 1]).unwrap(), x.get(&[0, 1, 2]).unwrap());
        assert_eq!(tx.get(&[1, 0, 1]).unwrap(), x.get(&[1, 1, 0]).unwrap());
    }

    #[test]
    fn frobenius_norm_known() {
        let x = t(vec![3.0, 4.0], &[2]);
        assert!((frobenius_norm(&x) - 5.0).abs() < 1e-6);
    }
}
