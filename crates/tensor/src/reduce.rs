//! Row-wise reductions: softmax, log-softmax, argmax, sums and means.
//!
//! All functions here view their input as a `(rows, cols)` matrix via
//! [`Shape::as_matrix`](crate::Shape::as_matrix) and reduce along the last
//! axis, which is what attention scores and classifier logits need.

use crate::error::TensorError;
use crate::tensor::Tensor;

impl Tensor {
    /// Numerically stable softmax along the last axis.
    ///
    /// Each row is shifted by its maximum before exponentiation, so inputs
    /// with large magnitudes do not overflow.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] when the last axis has zero
    /// extent, or a rank error for rank-0 tensors.
    ///
    /// # Example
    ///
    /// ```
    /// use gobo_tensor::Tensor;
    /// let x = Tensor::from_vec(vec![0.0, 0.0], &[1, 2])?;
    /// let y = x.softmax()?;
    /// assert!((y.as_slice()[0] - 0.5).abs() < 1e-6);
    /// # Ok::<(), gobo_tensor::TensorError>(())
    /// ```
    pub fn softmax(&self) -> Result<Tensor, TensorError> {
        let (rows, cols) = self.shape().as_matrix()?;
        if cols == 0 {
            return Err(TensorError::EmptyDimension { op: "softmax" });
        }
        let mut out = self.clone();
        let data = out.as_mut_slice();
        for r in 0..rows {
            let row = &mut data[r * cols..(r + 1) * cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        Ok(out)
    }

    /// Numerically stable log-softmax along the last axis.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::softmax`].
    pub fn log_softmax(&self) -> Result<Tensor, TensorError> {
        let (rows, cols) = self.shape().as_matrix()?;
        if cols == 0 {
            return Err(TensorError::EmptyDimension { op: "log_softmax" });
        }
        let mut out = self.clone();
        let data = out.as_mut_slice();
        for r in 0..rows {
            let row = &mut data[r * cols..(r + 1) * cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_sum = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
            for v in row.iter_mut() {
                *v -= log_sum;
            }
        }
        Ok(out)
    }

    /// Index of the largest element in each row.
    ///
    /// Ties resolve to the first (lowest-index) maximum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] when rows are empty, or a
    /// rank error for rank-0 tensors.
    pub fn argmax_rows(&self) -> Result<Vec<usize>, TensorError> {
        let (rows, cols) = self.shape().as_matrix()?;
        if cols == 0 {
            return Err(TensorError::EmptyDimension { op: "argmax_rows" });
        }
        let data = self.as_slice();
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Sum of each row.
    ///
    /// # Errors
    ///
    /// Returns a rank error for rank-0 tensors.
    pub fn sum_rows(&self) -> Result<Tensor, TensorError> {
        let (rows, cols) = self.shape().as_matrix()?;
        let data = self.as_slice();
        let sums: Vec<f32> =
            (0..rows).map(|r| data[r * cols..(r + 1) * cols].iter().sum()).collect();
        Tensor::from_vec(sums, &[rows])
    }

    /// Mean of each row.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] when rows are empty, or a
    /// rank error for rank-0 tensors.
    pub fn mean_rows(&self) -> Result<Tensor, TensorError> {
        let (_, cols) = self.shape().as_matrix()?;
        if cols == 0 {
            return Err(TensorError::EmptyDimension { op: "mean_rows" });
        }
        Ok(self.sum_rows()?.scale(1.0 / cols as f32))
    }

    /// Sum over rows, producing one value per column.
    ///
    /// # Errors
    ///
    /// Returns a rank error for rank-0 tensors.
    pub fn sum_cols(&self) -> Result<Tensor, TensorError> {
        let (rows, cols) = self.shape().as_matrix()?;
        let data = self.as_slice();
        let mut sums = vec![0.0f32; cols];
        for r in 0..rows {
            for c in 0..cols {
                sums[c] += data[r * cols + c];
            }
        }
        Tensor::from_vec(sums, &[cols])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = t(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let y = x.softmax().unwrap();
        for r in 0..2 {
            let s: f32 = y.row(r).unwrap().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = t(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = x.map(|v| v + 100.0);
        let sx = x.softmax().unwrap();
        let sy = y.softmax().unwrap();
        for (a, b) in sx.as_slice().iter().zip(sy.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_survives_large_magnitudes() {
        let x = t(vec![1000.0, 1000.0], &[1, 2]);
        let y = x.softmax().unwrap();
        assert!(y.all_finite());
        assert!((y.as_slice()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = t(vec![0.5, -1.5, 2.0, 0.0], &[2, 2]);
        let a = x.log_softmax().unwrap();
        let b = x.softmax().unwrap().map(f32::ln);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_rows_first_tie_wins() {
        let x = t(vec![1.0, 3.0, 3.0, 0.0, -1.0, -2.0], &[2, 3]);
        assert_eq!(x.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn row_and_col_sums() {
        let x = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(x.sum_rows().unwrap().as_slice(), &[3.0, 7.0]);
        assert_eq!(x.sum_cols().unwrap().as_slice(), &[4.0, 6.0]);
        assert_eq!(x.mean_rows().unwrap().as_slice(), &[1.5, 3.5]);
    }

    #[test]
    fn empty_rows_are_rejected() {
        let x = Tensor::zeros(&[2, 0]);
        assert!(x.softmax().is_err());
        assert!(x.argmax_rows().is_err());
        assert!(x.mean_rows().is_err());
    }

    #[test]
    fn rank1_treated_as_single_row() {
        let x = t(vec![0.0, 0.0, 0.0, 0.0], &[4]);
        let y = x.softmax().unwrap();
        assert!((y.as_slice()[0] - 0.25).abs() < 1e-6);
        assert_eq!(x.argmax_rows().unwrap(), vec![0]);
    }
}
