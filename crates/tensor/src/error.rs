//! Error type shared by all fallible tensor operations.

use std::fmt;

/// Error returned by fallible tensor operations.
///
/// The `Display` form states what failed and with which shapes, so it can
/// be surfaced directly to a user of the higher-level crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of provided elements does not match the product of the
    /// requested dimensions.
    ElementCount {
        /// Number of elements supplied by the caller.
        got: usize,
        /// Number of elements the shape requires.
        expected: usize,
    },
    /// Two tensors had incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// The operation requires a tensor of a particular rank.
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the tensor that was supplied.
        got: usize,
    },
    /// An index was out of bounds for the dimension it addresses.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The size of the dimension being indexed.
        len: usize,
    },
    /// A dimension of size zero was supplied where a non-empty extent is
    /// required (e.g. softmax over an empty row).
    EmptyDimension {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ElementCount { got, expected } => {
                write!(f, "element count {got} does not match shape requiring {expected}")
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::RankMismatch { op, expected, got } => {
                write!(f, "{op}: expected rank {expected}, got rank {got}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for dimension of size {len}")
            }
            TensorError::EmptyDimension { op } => {
                write!(f, "{op}: empty dimension")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_shapes() {
        let e = TensorError::ShapeMismatch { op: "matmul", lhs: vec![2, 3], rhs: vec![4, 5] };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("[2, 3]"));
        assert!(s.contains("[4, 5]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn display_element_count() {
        let e = TensorError::ElementCount { got: 3, expected: 4 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('4'));
    }
}
