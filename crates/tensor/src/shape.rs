//! Shape bookkeeping for row-major tensors.

use crate::error::TensorError;

/// The extents of a row-major tensor.
///
/// A `Shape` is an ordered list of dimension sizes. The last dimension is
/// contiguous in memory. Rank-0 (scalar) shapes are permitted and have one
/// element.
///
/// # Example
///
/// ```
/// use gobo_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape { dims: dims.to_vec() }
    }

    /// Creates the rank-0 (scalar) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of all dimensions; 1 for scalars).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns `true` when the shape holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds { index: axis, len: self.dims.len() })
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `index.len() != rank` and
    /// [`TensorError::IndexOutOfBounds`] if any coordinate exceeds its
    /// dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() {
            return Err(TensorError::RankMismatch {
                op: "offset",
                expected: self.dims.len(),
                got: index.len(),
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(&self.dims).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, len: d });
            }
            off += i * strides[axis];
        }
        Ok(off)
    }

    /// Interprets the shape as a 2-D `(rows, cols)` matrix.
    ///
    /// Rank-1 shapes are treated as a single row; higher ranks collapse all
    /// leading dimensions into rows and keep the last dimension as columns.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for rank-0 shapes.
    pub fn as_matrix(&self) -> Result<(usize, usize), TensorError> {
        match self.dims.len() {
            0 => Err(TensorError::RankMismatch { op: "as_matrix", expected: 2, got: 0 }),
            1 => Ok((1, self.dims[0])),
            _ => {
                let cols = *self.dims.last().expect("non-empty dims");
                let rows = self.dims[..self.dims.len() - 1].iter().product();
                Ok((rows, cols))
            }
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_walks_row_major_order() {
        let s = Shape::new(&[2, 3]);
        let mut seen = Vec::new();
        for r in 0..2 {
            for c in 0..3 {
                seen.push(s.offset(&[r, c]).unwrap());
            }
        }
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn offset_rejects_bad_rank_and_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(s.offset(&[1]), Err(TensorError::RankMismatch { .. })));
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { index: 2, len: 2 })
        ));
    }

    #[test]
    fn as_matrix_collapses_leading_dims() {
        assert_eq!(Shape::new(&[5]).as_matrix().unwrap(), (1, 5));
        assert_eq!(Shape::new(&[2, 5]).as_matrix().unwrap(), (2, 5));
        assert_eq!(Shape::new(&[2, 3, 5]).as_matrix().unwrap(), (6, 5));
        assert!(Shape::scalar().as_matrix().is_err());
    }

    #[test]
    fn zero_extent_dimension_is_empty() {
        let s = Shape::new(&[2, 0, 3]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn dim_accessor_checks_bounds() {
        let s = Shape::new(&[7, 9]);
        assert_eq!(s.dim(1).unwrap(), 9);
        assert!(s.dim(2).is_err());
    }
}
