//! Embedding-table row gathering.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Gathers rows of an embedding table by token id.
///
/// `table` must be rank 2 (`vocab × dim`); the result is
/// `(ids.len(), dim)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless the table is rank 2 and
/// [`TensorError::IndexOutOfBounds`] when any id exceeds the vocabulary.
///
/// # Example
///
/// ```
/// use gobo_tensor::{embed::gather_rows, Tensor};
/// let table = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0], &[3, 2])?;
/// let looked_up = gather_rows(&table, &[2, 0])?;
/// assert_eq!(looked_up.as_slice(), &[2.0, 2.0, 0.0, 0.0]);
/// # Ok::<(), gobo_tensor::TensorError>(())
/// ```
pub fn gather_rows(table: &Tensor, ids: &[usize]) -> Result<Tensor, TensorError> {
    if table.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "gather_rows",
            expected: 2,
            got: table.shape().rank(),
        });
    }
    let (vocab, dim) = (table.dims()[0], table.dims()[1]);
    let mut data = Vec::with_capacity(ids.len() * dim);
    let src = table.as_slice();
    for &id in ids {
        if id >= vocab {
            return Err(TensorError::IndexOutOfBounds { index: id, len: vocab });
        }
        data.extend_from_slice(&src[id * dim..(id + 1) * dim]);
    }
    Tensor::from_vec(data, &[ids.len(), dim])
}

/// Accumulates `grad`'s rows back into per-table-row gradients
/// (the adjoint of [`gather_rows`]). Rows addressed multiple times sum.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `grad` has one row per
/// id, and [`TensorError::IndexOutOfBounds`] when any id exceeds `vocab`.
pub fn scatter_add_rows(grad: &Tensor, ids: &[usize], vocab: usize) -> Result<Tensor, TensorError> {
    let (rows, dim) = grad.shape().as_matrix()?;
    if rows != ids.len() {
        return Err(TensorError::ShapeMismatch {
            op: "scatter_add_rows",
            lhs: grad.dims().to_vec(),
            rhs: vec![ids.len()],
        });
    }
    let mut out = Tensor::zeros(&[vocab, dim]);
    let dst = out.as_mut_slice();
    let src = grad.as_slice();
    for (r, &id) in ids.iter().enumerate() {
        if id >= vocab {
            return Err(TensorError::IndexOutOfBounds { index: id, len: vocab });
        }
        for c in 0..dim {
            dst[id * dim + c] += src[r * dim + c];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_selects_rows_in_order() {
        let table = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[3, 2]).unwrap();
        let out = gather_rows(&table, &[1, 1, 0]).unwrap();
        assert_eq!(out.dims(), &[3, 2]);
        assert_eq!(out.as_slice(), &[2.0, 3.0, 2.0, 3.0, 0.0, 1.0]);
    }

    #[test]
    fn gather_rejects_out_of_vocab() {
        let table = Tensor::zeros(&[3, 2]);
        assert!(gather_rows(&table, &[3]).is_err());
    }

    #[test]
    fn gather_of_empty_ids_is_empty() {
        let table = Tensor::zeros(&[3, 2]);
        let out = gather_rows(&table, &[]).unwrap();
        assert_eq!(out.dims(), &[0, 2]);
    }

    #[test]
    fn scatter_add_sums_repeated_rows() {
        let grad = Tensor::from_vec(vec![1.0, 1.0, 2.0, 2.0], &[2, 2]).unwrap();
        let out = scatter_add_rows(&grad, &[1, 1], 3).unwrap();
        assert_eq!(out.row(1).unwrap().as_slice(), &[3.0, 3.0]);
        assert_eq!(out.row(0).unwrap().sum(), 0.0);
    }

    #[test]
    fn scatter_is_adjoint_of_gather() {
        // <gather(T, ids), G> == <T, scatter(G, ids)> for any G.
        let table = Tensor::from_vec((0..8).map(|v| v as f32 * 0.3).collect(), &[4, 2]).unwrap();
        let ids = [2usize, 0, 2];
        let g = Tensor::from_vec((0..6).map(|v| v as f32 - 2.0).collect(), &[3, 2]).unwrap();
        let gathered = gather_rows(&table, &ids).unwrap();
        let scattered = scatter_add_rows(&g, &ids, 4).unwrap();
        let lhs: f32 = gathered.as_slice().iter().zip(g.as_slice()).map(|(a, b)| a * b).sum();
        let rhs: f32 = table.as_slice().iter().zip(scattered.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }
}
