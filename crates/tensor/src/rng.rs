//! Seeded random tensor construction.
//!
//! Everything in the reproduction is deterministic given a seed, so all
//! random fills go through an explicit [`rand::Rng`] rather than ambient
//! thread-local randomness.

use rand::Rng;

use crate::tensor::Tensor;

/// Fills a new tensor with samples from `N(mean, std²)` using the
/// Box–Muller transform.
///
/// # Example
///
/// ```
/// use gobo_tensor::rng::randn;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let t = randn(&mut rng, &[64, 64], 0.0, 0.02);
/// assert!(t.mean().abs() < 0.01);
/// ```
pub fn randn(rng: &mut impl Rng, dims: &[usize], mean: f32, std: f32) -> Tensor {
    let mut t = Tensor::zeros(dims);
    fill_randn(rng, t.as_mut_slice(), mean, std);
    t
}

/// Fills a new tensor with samples from `U[lo, hi)`.
pub fn rand_uniform(rng: &mut impl Rng, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for v in t.as_mut_slice() {
        *v = rng.gen_range(lo..hi);
    }
    t
}

/// Fills an existing slice with Gaussian samples (Box–Muller).
pub fn fill_randn(rng: &mut impl Rng, out: &mut [f32], mean: f32, std: f32) {
    let mut i = 0;
    while i < out.len() {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        out[i] = mean + std * r * theta.cos();
        i += 1;
        if i < out.len() {
            out[i] = mean + std * r * theta.sin();
            i += 1;
        }
    }
}

/// Xavier/Glorot-uniform initialization for a `(fan_out, fan_in)` weight
/// matrix.
pub fn xavier_uniform(rng: &mut impl Rng, fan_out: usize, fan_in: usize) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    rand_uniform(rng, &[fan_out, fan_in], -limit, limit)
}

/// Xavier/Glorot-*normal* initialization: `N(0, 2/(fan_in+fan_out))`.
///
/// The default for the trainable models: it keeps Xavier's signal
/// conditioning while giving each layer the Gaussian weight
/// distribution that trained BERT layers exhibit (paper Figure 1b) and
/// that GOBO's outlier split assumes.
pub fn xavier_normal(rng: &mut impl Rng, fan_out: usize, fan_in: usize) -> Tensor {
    let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
    randn(rng, &[fan_out, fan_in], 0.0, std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = randn(&mut rng, &[50_000], 1.0, 2.0);
        let mean = t.mean();
        let var =
            t.as_slice().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / (t.len() as f32);
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = randn(&mut StdRng::seed_from_u64(1), &[16], 0.0, 1.0);
        let b = randn(&mut StdRng::seed_from_u64(1), &[16], 0.0, 1.0);
        let c = randn(&mut StdRng::seed_from_u64(2), &[16], 0.0, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = rand_uniform(&mut rng, &[1000], -0.5, 0.5);
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn xavier_limit_scales_with_fans() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = xavier_uniform(&mut rng, 100, 200);
        let limit = (6.0f32 / 300.0).sqrt();
        assert!(t.as_slice().iter().all(|&v| v.abs() <= limit));
        assert_eq!(t.dims(), &[100, 200]);
    }

    #[test]
    fn odd_length_randn_fills_every_slot() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = randn(&mut rng, &[7], 5.0, 0.001);
        assert!(t.as_slice().iter().all(|&v| (v - 5.0).abs() < 0.1));
    }
}
