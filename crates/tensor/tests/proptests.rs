//! Property-based tests for the tensor substrate.

use gobo_tensor::linalg::{merge_heads, split_heads, stack_rows, transpose_batched};
use gobo_tensor::Tensor;
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-100.0f32..100.0).prop_map(|v| (v * 100.0).round() / 100.0)
}

fn matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(r, c)| {
        proptest::collection::vec(finite_f32(), r * c)
            .prop_map(move |v| Tensor::from_vec(v, &[r, c]).expect("sized"))
    })
}

proptest! {
    #[test]
    fn transpose_is_involutive(m in matrix(12)) {
        let t = m.transpose().unwrap();
        prop_assert_eq!(t.transpose().unwrap(), m);
    }

    #[test]
    fn matmul_identity_left_and_right(m in matrix(10)) {
        let (r, c) = (m.dims()[0], m.dims()[1]);
        prop_assert_eq!(Tensor::eye(r).matmul(&m).unwrap(), m.clone());
        prop_assert_eq!(m.matmul(&Tensor::eye(c)).unwrap(), m);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix(8), b in matrix(8), seed in any::<u64>()
    ) {
        // Shape-align b to a's shape by regenerating; simplest is to reuse a's dims.
        let _ = seed;
        let dims = a.dims().to_vec();
        let b = match b.reshape(&dims) {
            Ok(t) => t,
            Err(_) => return Ok(()), // incompatible random sizes: skip
        };
        let c = Tensor::ones(&[dims[1], 3]);
        let lhs = a.add(&b).unwrap().matmul(&c).unwrap();
        let rhs = a.matmul(&c).unwrap().add(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn matmul_nt_agrees_with_matmul(a in matrix(9), w in matrix(9)) {
        if a.dims()[1] != w.dims()[1] {
            return Ok(());
        }
        let nt = a.matmul_nt(&w).unwrap();
        let explicit = a.matmul(&w.transpose().unwrap()).unwrap();
        for (x, y) in nt.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(m in matrix(10)) {
        let s = m.softmax().unwrap();
        prop_assert!(s.all_finite());
        let rows = m.dims()[0];
        for r in 0..rows {
            let row = s.row(r).unwrap();
            prop_assert!(row.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
            prop_assert!((row.sum() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_preserves_row_ranking(m in matrix(6)) {
        let s = m.softmax().unwrap();
        prop_assert_eq!(m.argmax_rows().unwrap(), s.argmax_rows().unwrap());
    }

    #[test]
    fn layer_norm_output_is_normalized(m in matrix(10)) {
        let cols = m.dims()[1];
        if cols < 2 {
            return Ok(());
        }
        // Skip degenerate constant rows, where variance stays ~0.
        let data = m.as_slice();
        for r in 0..m.dims()[0] {
            let row = &data[r * cols..(r + 1) * cols];
            if row.iter().all(|&v| (v - row[0]).abs() < 1e-6) {
                return Ok(());
            }
        }
        let y = m
            .layer_norm(&Tensor::ones(&[cols]), &Tensor::zeros(&[cols]), 1e-12)
            .unwrap();
        for mo in gobo_tensor::norm::row_moments(&y).unwrap() {
            prop_assert!(mo.mean.abs() < 1e-3);
            prop_assert!((mo.var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn split_merge_heads_round_trip(rows in 1usize..8, heads in 1usize..5, hd in 1usize..6) {
        let cols = heads * hd;
        let m = Tensor::from_vec((0..rows * cols).map(|v| v as f32).collect(), &[rows, cols]).unwrap();
        let rt = merge_heads(&split_heads(&m, heads).unwrap()).unwrap();
        prop_assert_eq!(rt, m);
    }

    #[test]
    fn transpose_batched_is_involutive(b in 1usize..4, m in 1usize..6, n in 1usize..6) {
        let x = Tensor::from_vec((0..b * m * n).map(|v| v as f32 * 0.5).collect(), &[b, m, n]).unwrap();
        let rt = transpose_batched(&transpose_batched(&x).unwrap()).unwrap();
        prop_assert_eq!(rt, x);
    }

    #[test]
    fn stack_rows_then_row_extracts(vals in proptest::collection::vec(finite_f32(), 1..40), cols in 1usize..8) {
        let n = (vals.len() / cols).max(1);
        let rows: Vec<Tensor> = (0..n)
            .map(|r| {
                let mut row = vec![0.0f32; cols];
                for c in 0..cols {
                    row[c] = vals[(r * cols + c) % vals.len()];
                }
                Tensor::from_vec(row, &[cols]).unwrap()
            })
            .collect();
        let m = stack_rows(&rows).unwrap();
        for (r, original) in rows.iter().enumerate() {
            prop_assert_eq!(&m.row(r).unwrap(), original);
        }
    }
}
