//! On-chip residency: the paper's "amplify capacity" claim.
//!
//! Section I argues compression "amplifies bandwidth, capacity,
//! performance and energy efficiency". Capacity amplification has a
//! concrete consequence: once the *compressed* model fits in on-chip
//! SRAM, weights are fetched from DRAM once and every subsequent
//! inference runs out of SRAM. This module computes where that
//! crossover happens and the steady-state energy per inference on
//! either side of it.

use serde::{Deserialize, Serialize};

use crate::energy::EnergyModel;
use crate::traffic::InferenceTraffic;

/// Whether a model's weights are DRAM-streamed or SRAM-resident for a
/// given on-chip capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Residency {
    /// Weights exceed on-chip capacity: streamed from DRAM every
    /// inference.
    Streamed,
    /// Weights fit on-chip: DRAM pays once, then inferences are
    /// SRAM-only (plus activations).
    Resident,
}

/// Residency analysis of one model at one compression ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResidencyReport {
    /// Weight + embedding bytes after compression.
    pub compressed_weight_bytes: f64,
    /// On-chip capacity assumed, bytes.
    pub sram_capacity_bytes: f64,
    /// Residency verdict.
    pub residency: Residency,
    /// Steady-state energy per inference, microjoules (amortized over
    /// many inferences; the one-time DRAM fill is excluded).
    pub steady_state_energy_uj: f64,
    /// Steady-state bandwidth-bound latency per inference, ms.
    pub steady_state_latency_ms: f64,
}

/// Computes residency for a model's traffic profile under `model`
/// constants and `sram_capacity_bytes` of on-chip memory.
///
/// When weights are resident, only activations cross the DRAM
/// interface per inference; weights are re-read from SRAM at the SRAM
/// energy rate.
pub fn analyze(
    traffic: &InferenceTraffic,
    energy_model: &EnergyModel,
    sram_capacity_bytes: f64,
) -> ResidencyReport {
    let weight_bytes = traffic.weight_bytes + traffic.embedding_bytes;
    let resident = weight_bytes <= sram_capacity_bytes;
    let (energy, latency) = if resident {
        // Weights from SRAM; activations still cross DRAM.
        let act = traffic.activation_bytes;
        let energy = (act * (energy_model.dram_pj_per_byte + energy_model.sram_pj_per_byte)
            + weight_bytes * energy_model.sram_pj_per_byte)
            / 1e6;
        let latency = act / energy_model.dram_bytes_per_sec * 1e3;
        (energy, latency)
    } else {
        (energy_model.energy(traffic), energy_model.latency_ms(traffic))
    };
    ResidencyReport {
        compressed_weight_bytes: weight_bytes,
        sram_capacity_bytes,
        residency: if resident { Residency::Resident } else { Residency::Streamed },
        steady_state_energy_uj: energy,
        steady_state_latency_ms: latency,
    }
}

/// The smallest compression ratio at which a model's weights become
/// SRAM-resident for the given capacity (`None` if even lossless-∞
/// compression cannot help because the FP32 activations alone dominate
/// — never the case here, but the API is honest).
pub fn crossover_ratio(fp32: &InferenceTraffic, sram_capacity_bytes: f64) -> Option<f64> {
    let weight_bytes = fp32.weight_bytes + fp32.embedding_bytes;
    if weight_bytes <= 0.0 || sram_capacity_bytes <= 0.0 {
        return None;
    }
    Some((weight_bytes / sram_capacity_bytes).max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gobo_model::config::ModelConfig;
    use gobo_model::footprint::Footprint;

    fn bert_base_traffic() -> InferenceTraffic {
        InferenceTraffic::fp32(&Footprint::of(&ModelConfig::bert_base(), 128))
    }

    #[test]
    fn fp32_bert_base_does_not_fit_32mb() {
        let t = bert_base_traffic();
        let r = analyze(&t, &EnergyModel::default(), 32.0 * 1024.0 * 1024.0);
        assert_eq!(r.residency, Residency::Streamed);
    }

    #[test]
    fn ten_x_compression_makes_bert_base_resident_in_48mb() {
        // 326 MB weights + 0.4 MB embeddings rows / 9.8 ≈ 35 MB < 48 MB —
        // a plausible large-SoC SRAM; the paper's capacity amplification.
        let t = bert_base_traffic().with_weight_compression(9.8);
        let r = analyze(&t, &EnergyModel::default(), 48.0 * 1024.0 * 1024.0);
        assert_eq!(r.residency, Residency::Resident);
    }

    #[test]
    fn residency_slashes_steady_state_energy() {
        let capacity = 48.0 * 1024.0 * 1024.0;
        let energy_model = EnergyModel::default();
        let streamed = analyze(&bert_base_traffic(), &energy_model, capacity);
        let resident =
            analyze(&bert_base_traffic().with_weight_compression(9.8), &energy_model, capacity);
        assert_eq!(streamed.residency, Residency::Streamed);
        assert_eq!(resident.residency, Residency::Resident);
        let saving = streamed.steady_state_energy_uj / resident.steady_state_energy_uj;
        // Residency compounds on top of compression: well beyond the
        // ~8x pure-traffic saving.
        assert!(saving > 15.0, "saving {saving}");
        assert!(resident.steady_state_latency_ms < streamed.steady_state_latency_ms / 5.0);
    }

    #[test]
    fn crossover_ratio_matches_analyze() {
        let t = bert_base_traffic();
        let capacity = 48.0 * 1024.0 * 1024.0;
        let ratio = crossover_ratio(&t, capacity).expect("finite weights");
        // Just below the crossover: still streamed; at it: resident.
        let below =
            analyze(&t.with_weight_compression(ratio * 0.99), &EnergyModel::default(), capacity);
        let at =
            analyze(&t.with_weight_compression(ratio * 1.01), &EnergyModel::default(), capacity);
        assert_eq!(below.residency, Residency::Streamed);
        assert_eq!(at.residency, Residency::Resident);
    }

    #[test]
    fn degenerate_inputs() {
        let t = bert_base_traffic();
        assert!(crossover_ratio(&t, 0.0).is_none());
        let empty =
            InferenceTraffic { weight_bytes: 0.0, embedding_bytes: 0.0, activation_bytes: 1.0 };
        assert!(crossover_ratio(&empty, 1024.0).is_none());
        // A tiny model fits without compression: ratio clamps to 1.
        let small =
            InferenceTraffic { weight_bytes: 10.0, embedding_bytes: 0.0, activation_bytes: 1.0 };
        assert_eq!(crossover_ratio(&small, 1024.0), Some(1.0));
    }
}
