//! Energy and bandwidth-bound latency estimation.

use serde::{Deserialize, Serialize};

use crate::traffic::InferenceTraffic;

/// Technology constants for the first-order model.
///
/// Defaults are representative published figures for a mobile-class
/// LPDDR4 system: ~20 pJ/bit DRAM transfer energy and ~25.6 GB/s of
/// bandwidth, with on-chip SRAM two orders of magnitude cheaper —
/// matching the paper's "off-chip accesses are two orders of magnitude
/// more expensive" framing. Every constant is overridable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// DRAM transfer energy per byte, picojoules.
    pub dram_pj_per_byte: f64,
    /// On-chip SRAM access energy per byte, picojoules.
    pub sram_pj_per_byte: f64,
    /// Off-chip bandwidth, bytes per second.
    pub dram_bytes_per_sec: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            dram_pj_per_byte: 160.0, // 20 pJ/bit
            sram_pj_per_byte: 1.6,   // two orders of magnitude cheaper
            dram_bytes_per_sec: 25.6e9,
        }
    }
}

impl EnergyModel {
    /// Off-chip energy of one inference, in microjoules. Every byte is
    /// also staged once through on-chip SRAM.
    pub fn energy(&self, traffic: &InferenceTraffic) -> f64 {
        traffic.total_bytes() * (self.dram_pj_per_byte + self.sram_pj_per_byte) / 1e6
    }

    /// Bandwidth-bound latency of one inference, in milliseconds —
    /// the floor imposed by streaming the traffic, independent of
    /// compute.
    pub fn latency_ms(&self, traffic: &InferenceTraffic) -> f64 {
        traffic.total_bytes() / self.dram_bytes_per_sec * 1e3
    }

    /// Ratio of off-chip to on-chip per-byte energy (the paper quotes
    /// "two orders of magnitude").
    pub fn offchip_cost_ratio(&self) -> f64 {
        self.dram_pj_per_byte / self.sram_pj_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gobo_model::config::ModelConfig;
    use gobo_model::footprint::Footprint;

    fn fp32_traffic() -> InferenceTraffic {
        InferenceTraffic::fp32(&Footprint::of(&ModelConfig::bert_base(), 128))
    }

    #[test]
    fn default_matches_two_orders_of_magnitude_claim() {
        let m = EnergyModel::default();
        assert!((m.offchip_cost_ratio() - 100.0).abs() < 1.0);
    }

    #[test]
    fn energy_and_latency_scale_with_compression() {
        let m = EnergyModel::default();
        let fp32 = fp32_traffic();
        let gobo = fp32.with_weight_compression(9.8);
        let e_ratio = m.energy(&fp32) / m.energy(&gobo);
        let l_ratio = m.latency_ms(&fp32) / m.latency_ms(&gobo);
        // Weights are >90% of traffic, so ~10× weight compression gives
        // ~6-10× total savings.
        assert!(e_ratio > 5.0 && e_ratio < 9.8, "energy ratio {e_ratio}");
        assert!((e_ratio - l_ratio).abs() < 1e-9, "both are traffic-proportional");
    }

    #[test]
    fn bert_base_magnitudes_are_sane() {
        // BERT-Base FP32: ~350 MB per inference at 25.6 GB/s ≈ ~14 ms;
        // at ~160 pJ/B ≈ ~56 mJ... our unit is µJ: ~56,000 µJ.
        let m = EnergyModel::default();
        let t = fp32_traffic();
        let lat = m.latency_ms(&t);
        assert!(lat > 10.0 && lat < 20.0, "latency {lat} ms");
        let e = m.energy(&t);
        assert!(e > 30_000.0 && e < 90_000.0, "energy {e} µJ");
    }

    #[test]
    fn custom_constants_apply() {
        let m =
            EnergyModel { dram_pj_per_byte: 100.0, sram_pj_per_byte: 0.0, dram_bytes_per_sec: 1e9 };
        let t = InferenceTraffic { weight_bytes: 1e9, embedding_bytes: 0.0, activation_bytes: 0.0 };
        assert!((m.energy(&t) - 1e9 * 100.0 / 1e6).abs() < 1e-6);
        assert!((m.latency_ms(&t) - 1000.0).abs() < 1e-9);
    }
}
