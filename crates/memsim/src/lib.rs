//! First-order memory-traffic, energy, and latency model.
//!
//! The paper's title claims — low latency and energy-efficient
//! inference — rest on one observation (Section I): BERT inference is
//! memory-bound, off-chip accesses cost roughly two orders of magnitude
//! more energy and latency than on-chip ones, and the weights dominate
//! traffic because they are streamed once per inference while the
//! hidden state is small. Compressing the weights ~10× therefore cuts
//! off-chip traffic, energy, and bandwidth-bound latency nearly ~10×.
//!
//! The arXiv v1 we reproduce motivates but does not tabulate a hardware
//! evaluation, so this crate is the *extension* DESIGN.md documents: an
//! analytic model with explicit, overridable constants that turns the
//! compression ratios measured by `gobo-quant` into traffic, energy,
//! and latency estimates.
//!
//! # Example
//!
//! ```
//! use gobo_memsim::{EnergyModel, InferenceTraffic};
//! use gobo_model::{config::ModelConfig, footprint::Footprint};
//!
//! let fp = Footprint::of(&ModelConfig::bert_base(), 128);
//! let fp32 = InferenceTraffic::fp32(&fp);
//! let gobo = fp32.with_weight_compression(9.8);
//! let model = EnergyModel::default();
//! let saving = model.energy(&fp32) / model.energy(&gobo);
//! assert!(saving > 5.0, "energy saving {saving}");
//! ```

#![deny(missing_docs)]

pub mod energy;
pub mod residency;
pub mod traffic;

pub use energy::EnergyModel;
pub use residency::{analyze as analyze_residency, Residency, ResidencyReport};
pub use traffic::InferenceTraffic;
