//! Per-inference off-chip traffic accounting.

use gobo_model::footprint::Footprint;
use serde::{Deserialize, Serialize};

/// Bytes moved across the off-chip interface for one inference.
///
/// The model follows the paper's Section I framing: FC weights and the
/// embedding rows actually touched are streamed from DRAM once per
/// inference (they exceed any realistic on-chip capacity), while
/// activations are small enough to count once in and once out.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceTraffic {
    /// FC weight bytes streamed.
    pub weight_bytes: f64,
    /// Embedding-row bytes gathered (`seq_len` rows of the word table).
    pub embedding_bytes: f64,
    /// Activation bytes written + read across layer boundaries.
    pub activation_bytes: f64,
}

impl InferenceTraffic {
    /// Traffic of the uncompressed FP32 model described by `footprint`.
    pub fn fp32(footprint: &Footprint) -> Self {
        let seq = footprint.sequence_length as f64;
        InferenceTraffic {
            weight_bytes: footprint.weight_bytes as f64,
            // One word-embedding row per token.
            embedding_bytes: seq * footprint.input_per_word_bytes as f64,
            // Hidden state out + in around each streamed layer group is
            // dominated by the largest per-word activation.
            activation_bytes: 2.0
                * seq
                * (footprint.input_per_word_bytes + footprint.largest_acts_per_word_bytes) as f64,
        }
    }

    /// The same inference with weights (and embedding rows) compressed
    /// by `ratio` — the effect of GOBO's off-chip format. Activations
    /// stay FP32, exactly as in the paper.
    ///
    /// # Panics
    ///
    /// Panics when `ratio` is not a positive finite number.
    pub fn with_weight_compression(&self, ratio: f64) -> Self {
        assert!(ratio.is_finite() && ratio > 0.0, "invalid compression ratio {ratio}");
        InferenceTraffic {
            weight_bytes: self.weight_bytes / ratio,
            embedding_bytes: self.embedding_bytes / ratio,
            activation_bytes: self.activation_bytes,
        }
    }

    /// Total off-chip bytes.
    pub fn total_bytes(&self) -> f64 {
        self.weight_bytes + self.embedding_bytes + self.activation_bytes
    }

    /// Fraction of traffic due to weights (the paper's "weights
    /// dominate" claim is this being close to 1).
    pub fn weight_fraction(&self) -> f64 {
        self.weight_bytes / self.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gobo_model::config::ModelConfig;

    fn base() -> InferenceTraffic {
        InferenceTraffic::fp32(&Footprint::of(&ModelConfig::bert_base(), 128))
    }

    #[test]
    fn weights_dominate_fp32_traffic() {
        // Section I: footprint and traffic are dominated by the weights.
        let t = base();
        assert!(t.weight_fraction() > 0.9, "weight fraction {}", t.weight_fraction());
    }

    #[test]
    fn compression_scales_weight_term_only() {
        let t = base();
        let c = t.with_weight_compression(10.0);
        assert!((c.weight_bytes - t.weight_bytes / 10.0).abs() < 1.0);
        assert_eq!(c.activation_bytes, t.activation_bytes);
        assert!(c.total_bytes() < t.total_bytes() / 5.0);
    }

    #[test]
    fn longer_sequences_move_more_activation_bytes() {
        let short = InferenceTraffic::fp32(&Footprint::of(&ModelConfig::bert_base(), 64));
        let long = InferenceTraffic::fp32(&Footprint::of(&ModelConfig::bert_base(), 256));
        assert!(long.activation_bytes > short.activation_bytes * 3.9);
        assert_eq!(long.weight_bytes, short.weight_bytes);
    }

    #[test]
    #[should_panic(expected = "invalid compression ratio")]
    fn rejects_zero_ratio() {
        let _ = base().with_weight_compression(0.0);
    }
}
