//! The compressed-model file format (`.gobom`).
//!
//! ```text
//! file := magic:u32 "GOBM" | version:u8 | pad:[u8;3]
//!       | raw_config_model_len:u32 | raw_config_model (gobo-model io format,
//!             carrying config + aux tensors + placeholder weights of length 0? —
//!             see below)
//!       | archive_len:u32 | archive (gobo-quant container format)
//!       | crc:u32            (v2: CRC32 of every preceding byte)
//! ```
//!
//! Format **v2** seals the whole file with a trailing CRC32 (on top of
//! the per-layer and per-entry checksums inside the archive), so any
//! single-byte corruption of a `.gobom` on disk is rejected before a
//! single weight is interpreted. v1 files (no checksum) still load,
//! with a warning on stderr.
//!
//! To avoid duplicating tensor serialization, the "configuration and
//! auxiliary parameters" section is a *partial* raw model in
//! `gobo-model::io` format: it carries the config, the FP32 auxiliary
//! parameters (biases, LayerNorms), and only those quantizable weights
//! the archive does NOT cover (e.g. embeddings when only FC weights
//! were quantized). The archive carries the compressed weights.

use gobo_model::io::{load_model_partial, save_model_with};
use gobo_model::{ModelError, TransformerModel};
use gobo_quant::container::ModelArchive;
use gobo_quant::QuantError;
use gobo_tensor::Tensor;

/// Magic prefix of a compressed model file.
pub const COMPRESSED_MAGIC: u32 = u32::from_le_bytes(*b"GOBM");
/// Current compressed-model format version: whole-file trailing CRC32.
pub const COMPRESSED_FORMAT_VERSION: u8 = 2;
/// The pre-checksum compressed-model format, still readable.
pub const COMPRESSED_LEGACY_VERSION: u8 = 1;

/// Error raised by compressed-model (de)serialization.
#[derive(Debug)]
pub enum FormatError {
    /// The payload was structurally invalid.
    Corrupt(&'static str),
    /// A model-side failure (shapes, config).
    Model(ModelError),
    /// A quantization-container failure.
    Quant(QuantError),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Corrupt(what) => write!(f, "corrupt compressed model: {what}"),
            FormatError::Model(e) => write!(f, "model failure: {e}"),
            FormatError::Quant(e) => write!(f, "container failure: {e}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<ModelError> for FormatError {
    fn from(e: ModelError) -> Self {
        FormatError::Model(e)
    }
}

impl From<QuantError> for FormatError {
    fn from(e: QuantError) -> Self {
        FormatError::Quant(e)
    }
}

/// A compressed model: configuration + FP32 auxiliary parameters +
/// quantized layers.
#[derive(Debug, Clone)]
pub struct CompressedModel {
    /// Skeleton model carrying the configuration and the auxiliary
    /// (bias / LayerNorm) parameters; its quantizable weights are
    /// placeholders.
    pub skeleton: TransformerModel,
    /// The quantized layers, named as in the skeleton.
    pub archive: ModelArchive,
}

impl CompressedModel {
    /// Builds the compressed form of `model` from its quantization
    /// archive: the skeleton keeps config + aux, with archived weights
    /// zeroed (they are not serialized; see [`CompressedModel::to_bytes`]).
    ///
    /// Layers missing from the archive (e.g. embeddings when only FC
    /// weights were quantized) keep their FP32 values in the skeleton.
    pub fn new(model: &TransformerModel, archive: ModelArchive) -> Self {
        let mut skeleton = model.clone();
        for (name, _) in archive.iter() {
            if let Ok(t) = skeleton.weight(name) {
                let dims = t.dims().to_vec();
                skeleton.set_weight(name, Tensor::zeros(&dims)).expect("same shape");
            }
        }
        CompressedModel { skeleton, archive }
    }

    /// Reconstructs the FP32 model: skeleton + decoded archive layers.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches between archive entries and the
    /// skeleton.
    pub fn decode(&self) -> Result<TransformerModel, FormatError> {
        let mut model = self.skeleton.clone();
        for (name, layer) in self.archive.iter() {
            let dims = model.weight(name)?.dims().to_vec();
            let tensor = Tensor::from_vec(layer.decode(), &dims).map_err(ModelError::from)?;
            model.set_weight(name, tensor)?;
        }
        Ok(model)
    }

    /// Serializes the compressed model (v2: whole-file trailing CRC32).
    /// Weights present in the archive are omitted from the skeleton
    /// section entirely.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.body_bytes(COMPRESSED_FORMAT_VERSION, &self.archive.to_bytes());
        let crc = gobo_quant::integrity::crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Serializes in the legacy v1 (checksum-less) layout, with a v1
    /// archive inside. For compatibility tests only.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        self.body_bytes(COMPRESSED_LEGACY_VERSION, &self.archive.to_bytes_v1())
    }

    fn body_bytes(&self, version: u8, archive: &[u8]) -> Vec<u8> {
        let raw = save_model_with(&self.skeleton, |name| self.archive.get(name).is_none());
        let mut out = Vec::with_capacity(raw.len() + archive.len() + 20);
        out.extend_from_slice(&COMPRESSED_MAGIC.to_le_bytes());
        out.push(version);
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
        out.extend_from_slice(&raw);
        out.extend_from_slice(&(archive.len() as u32).to_le_bytes());
        out.extend_from_slice(archive);
        out
    }

    /// Deserializes a compressed model. v2 files are rejected on
    /// checksum mismatch before any field past the version byte is
    /// interpreted; v1 files load with a warning on stderr.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::Corrupt`] for structural problems and
    /// propagates model/container failures.
    pub fn from_bytes(data: &[u8]) -> Result<Self, FormatError> {
        if data.len() < 5 {
            return Err(FormatError::Corrupt("truncated file"));
        }
        let magic = u32::from_le_bytes(data[..4].try_into().expect("4 bytes"));
        if magic != COMPRESSED_MAGIC {
            return Err(FormatError::Corrupt("bad magic"));
        }
        let data = match data[4] {
            COMPRESSED_LEGACY_VERSION => {
                eprintln!(
                    "gobo: warning: compressed model is format v1 (no checksum); \
                     integrity unverified"
                );
                data
            }
            COMPRESSED_FORMAT_VERSION => {
                let Some(body_len) = data.len().checked_sub(4).filter(|&n| n >= 5) else {
                    return Err(FormatError::Corrupt("truncated file"));
                };
                let stored = u32::from_le_bytes(data[body_len..].try_into().expect("4 bytes"));
                if gobo_quant::integrity::crc32(&data[..body_len]) != stored {
                    return Err(FormatError::Corrupt("file checksum mismatch"));
                }
                &data[..body_len]
            }
            _ => return Err(FormatError::Corrupt("unsupported version")),
        };
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], FormatError> {
            let end = pos
                .checked_add(n)
                .filter(|&e| e <= data.len())
                .ok_or(FormatError::Corrupt("truncated file"))?;
            let out = &data[*pos..end];
            *pos = end;
            Ok(out)
        };
        let mut pos = 5usize; // magic + version, already checked
        let _pad = take(&mut pos, 3)?;
        let raw_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let (skeleton, provided) = load_model_partial(take(&mut pos, raw_len)?)?;
        let archive_len =
            u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let archive = ModelArchive::from_bytes(take(&mut pos, archive_len)?)?;
        if pos != data.len() {
            return Err(FormatError::Corrupt("trailing bytes"));
        }
        // Every quantizable weight must come from exactly one side.
        for spec in skeleton.fc_layers().iter().chain(&skeleton.embedding_tables()) {
            let in_skeleton = provided.contains(&spec.name);
            let in_archive = archive.get(&spec.name).is_some();
            if !in_skeleton && !in_archive {
                return Err(FormatError::Corrupt("weight missing from skeleton and archive"));
            }
        }
        Ok(CompressedModel { skeleton, archive })
    }

    /// Total serialized size in bytes.
    pub fn serialized_bytes(&self) -> usize {
        self.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{quantize_model, QuantizeOptions};
    use gobo_model::config::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quantized() -> (TransformerModel, CompressedModel) {
        let config = ModelConfig::tiny("CliFmt", 2, 24, 2, 40, 12).unwrap();
        let model = TransformerModel::new(config, &mut StdRng::seed_from_u64(5)).unwrap();
        let outcome = quantize_model(&model, &QuantizeOptions::gobo(3).unwrap()).unwrap();
        let compressed = CompressedModel::new(&model, outcome.archive);
        (outcome.model, compressed)
    }

    #[test]
    fn round_trip_matches_pipeline_decode() {
        let (decoded_by_pipeline, compressed) = quantized();
        let bytes = compressed.to_bytes();
        let restored = CompressedModel::from_bytes(&bytes).unwrap();
        let decoded = restored.decode().unwrap();
        // Same weights as the pipeline's decoded model…
        for spec in decoded.fc_layers() {
            assert_eq!(
                decoded.weight(&spec.name).unwrap(),
                decoded_by_pipeline.weight(&spec.name).unwrap(),
                "{}",
                spec.name
            );
        }
        // …and identical forward behaviour.
        let a = decoded.encode(&[1, 2, 3], &[]).unwrap();
        let b = decoded_by_pipeline.encode(&[1, 2, 3], &[]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unquantized_tables_survive_in_skeleton() {
        let (_, compressed) = quantized();
        // Embeddings were not quantized: the skeleton keeps them FP32.
        let word = compressed.skeleton.weight("embeddings.word").unwrap();
        assert!(word.as_slice().iter().any(|&v| v != 0.0));
        // FC weights are zeroed placeholders.
        let pooler = compressed.skeleton.weight("pooler").unwrap();
        assert!(pooler.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn compression_is_real() {
        let (_, compressed) = quantized();
        let raw = gobo_model::io::save_model(&compressed.decode().unwrap()).len();
        let packed = compressed.serialized_bytes();
        // Embeddings stay FP32 in this configuration, but the FC
        // weights shrink ~10x, so the file must be clearly smaller.
        assert!((packed as f64) < raw as f64 * 0.8, "packed {packed} vs raw {raw}");
    }

    #[test]
    fn rejects_corruption() {
        let (_, compressed) = quantized();
        let bytes = compressed.to_bytes();
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(CompressedModel::from_bytes(&bad).is_err());
        let mut bad = bytes.clone();
        bad[4] = 7;
        assert!(CompressedModel::from_bytes(&bad).is_err());
        assert!(CompressedModel::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        let mut bad = bytes;
        bad.push(0);
        assert!(CompressedModel::from_bytes(&bad).is_err());
    }

    #[test]
    fn v2_checksum_catches_single_byte_flips() {
        let (_, compressed) = quantized();
        let bytes = compressed.to_bytes();
        // Sample positions across the whole file (header, skeleton,
        // archive, trailing CRC itself).
        for pos in (0..bytes.len()).step_by(bytes.len() / 64 + 1) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(CompressedModel::from_bytes(&bad).is_err(), "flip at byte {pos} undetected");
        }
    }

    #[test]
    fn legacy_v1_file_still_loads() {
        let (_, compressed) = quantized();
        let v1 = compressed.to_bytes_v1();
        let restored = CompressedModel::from_bytes(&v1).unwrap();
        let decoded = restored.decode().unwrap();
        let reference = compressed.decode().unwrap();
        for spec in reference.fc_layers() {
            assert_eq!(decoded.weight(&spec.name).unwrap(), reference.weight(&spec.name).unwrap());
        }
    }
}
