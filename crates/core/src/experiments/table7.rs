//! Table VII: embedding-table sizes and compression ratios for all
//! five models at 3- and 4-bit.

use std::fmt;

use gobo_model::footprint::MIB;

use super::ExperimentOptions;
use crate::analytic::{embedding_compression, scaled_config};
use crate::error::GoboError;
use crate::zoo::PaperModel;

/// One model's embedding-compression row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Which model.
    pub model: PaperModel,
    /// FP32 embedding bytes (word table, as the paper counts).
    pub baseline_bytes: usize,
    /// Compressed bytes at 3 bits.
    pub bytes_3bit: usize,
    /// Compression ratio at 3 bits.
    pub ratio_3bit: f64,
    /// Compressed bytes at 4 bits.
    pub bytes_4bit: usize,
    /// Compression ratio at 4 bits.
    pub ratio_4bit: f64,
}

/// The regenerated Table VII.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7 {
    /// One row per published model.
    pub rows: Vec<Row>,
}

/// Regenerates Table VII. The paper's "Embedding" size counts the
/// word-piece table (89.42 MB for BERT-Base), so position/type tables
/// are excluded from the rows here.
///
/// # Errors
///
/// Propagates quantization failures.
pub fn run(options: &ExperimentOptions) -> Result<Table7, GoboError> {
    let word_only = |r: gobo_quant::CompressionReport| -> gobo_quant::CompressionReport {
        r.layers.into_iter().filter(|l| l.name == "embeddings.word").collect()
    };
    let mut rows = Vec::new();
    for model in PaperModel::all() {
        let config = scaled_config(&model.config(), options.geometry_divisor)?;
        let r3 = word_only(embedding_compression(&config, 3, options.seed)?);
        let r4 = word_only(embedding_compression(&config, 4, options.seed)?);
        rows.push(Row {
            model,
            baseline_bytes: r3.original_bytes(),
            bytes_3bit: r3.compressed_bytes(),
            ratio_3bit: r3.compression_ratio(),
            bytes_4bit: r4.compressed_bytes(),
            ratio_4bit: r4.compression_ratio(),
        });
    }
    Ok(Table7 { rows })
}

impl fmt::Display for Table7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table VII: embedding size (MB) and compression ratio")?;
        writeln!(
            f,
            "{:<16} {:>12} {:>10} {:>8} {:>10} {:>8}",
            "Model", "FP32", "3-bit", "CR", "4-bit", "CR"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<16} {:>12} {:>10} {:>8} {:>10} {:>8}",
                r.model.name(),
                format!("{:.2} MB", r.baseline_bytes as f64 / MIB),
                format!("{:.2} MB", r.bytes_3bit as f64 / MIB),
                super::fmt_ratio(r.ratio_3bit),
                format!("{:.2} MB", r.bytes_4bit as f64 / MIB),
                super::fmt_ratio(r.ratio_4bit),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_rows_have_paper_orderings() {
        let t = run(&ExperimentOptions::smoke()).unwrap();
        assert_eq!(t.rows.len(), 5);
        for r in &t.rows {
            // 3-bit compresses harder than 4-bit; both near their ideals.
            assert!(r.ratio_3bit > r.ratio_4bit);
            assert!(r.ratio_3bit > 9.0 && r.ratio_3bit < 10.67, "{}", r.ratio_3bit);
            assert!(r.ratio_4bit > 7.0 && r.ratio_4bit < 8.0, "{}", r.ratio_4bit);
        }
        // RoBERTa-Large has the largest embedding table.
        let largest = t.rows.iter().max_by_key(|r| r.baseline_bytes).unwrap();
        assert_eq!(largest.model, PaperModel::RobertaLarge);
        assert!(t.to_string().contains("RoBERTa-Large"));
    }
}
