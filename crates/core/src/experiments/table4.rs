//! Table IV: centroid-selection policy sweep (Linear vs K-Means vs
//! GOBO) across bit widths, on the MNLI-like and STS-B-like tasks
//! (BERT-Base stand-in) and the SQuAD-like task (BERT-Large stand-in).

use std::fmt;

use gobo_quant::QuantMethod;
use gobo_tasks::TaskKind;

use super::ExperimentOptions;
use crate::error::GoboError;
use crate::pipeline::QuantizeOptions;
use crate::zoo::{train_zoo_model, PaperModel, ZooModel};

/// Accuracy of one (bits, method) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Centroid-selection policy.
    pub method: QuantMethod,
    /// Metric value in `[0, 1]`.
    pub score: f64,
    /// Drop vs the FP32 baseline.
    pub error: f64,
}

/// One bit-width row of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// G-group index width.
    pub bits: u8,
    /// Linear / K-Means / GOBO cells, in that order.
    pub cells: Vec<Cell>,
    /// Ideal compression ratio `32 / bits` (the paper's "Potential
    /// Comp. Ratio" column).
    pub potential_ratio: f64,
}

/// The sweep for one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSweep {
    /// Which published model the stand-in replaces.
    pub model: PaperModel,
    /// The task and its metric.
    pub kind: TaskKind,
    /// FP32 baseline score.
    pub baseline: f64,
    /// One row per bit width (2..=6).
    pub rows: Vec<Row>,
}

/// The regenerated Table IV.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// MNLI-like (BERT-Base), STS-B-like (BERT-Base), SQuAD-like
    /// (BERT-Large) sweeps.
    pub sweeps: Vec<TaskSweep>,
}

/// Bit widths the paper sweeps.
pub const BITS: [u8; 5] = [2, 3, 4, 5, 6];

/// Regenerates Table IV.
///
/// # Errors
///
/// Propagates training, quantization and evaluation failures.
pub fn run(options: &ExperimentOptions) -> Result<Table4, GoboError> {
    let mut sweeps = Vec::new();
    for (paper, kind) in [
        (PaperModel::BertBase, TaskKind::Nli),
        (PaperModel::BertBase, TaskKind::Sts),
        (PaperModel::BertLarge, TaskKind::Span),
    ] {
        let zoo = train_zoo_model(paper, kind, options.zoo_scale)?;
        sweeps.push(sweep_one(&zoo)?);
    }
    Ok(Table4 { sweeps })
}

/// Runs the policy × bits sweep for one trained stand-in.
///
/// # Errors
///
/// Propagates quantization and evaluation failures.
pub fn sweep_one(zoo: &ZooModel) -> Result<TaskSweep, GoboError> {
    let mut rows = Vec::new();
    for bits in BITS {
        let mut cells = Vec::new();
        for method in [QuantMethod::Linear, QuantMethod::KMeans, QuantMethod::Gobo] {
            let opts = QuantizeOptions::with_method(method, bits)?;
            let (score, _) = zoo.quantized_score(&opts)?;
            cells.push(Cell {
                method,
                score: score.value,
                error: zoo.baseline.value - score.value,
            });
        }
        rows.push(Row { bits, cells, potential_ratio: 32.0 / f64::from(bits) });
    }
    Ok(TaskSweep { model: zoo.paper, kind: zoo.kind, baseline: zoo.baseline.value, rows })
}

/// Formats one sweep as a paper-style block (shared with Tables V/VI).
pub(crate) fn fmt_sweep(f: &mut fmt::Formatter<'_>, sweep: &TaskSweep) -> fmt::Result {
    writeln!(
        f,
        "\n{} on {} (baseline {})",
        sweep.kind.paper_name(),
        sweep.model.name(),
        super::fmt_pct(sweep.baseline)
    )?;
    writeln!(
        f,
        "{:>4} {:>22} {:>22} {:>22} {:>10}",
        "Bits", "Linear (err)", "K-Means (err)", "GOBO (err)", "Pot. CR"
    )?;
    for row in &sweep.rows {
        let cell = |c: Option<&Cell>| match c {
            Some(c) => format!("{} ({})", super::fmt_pct(c.score), super::fmt_pct(c.error)),
            None => "-".to_owned(),
        };
        let by_method = |m: QuantMethod| row.cells.iter().find(|c| c.method == m);
        writeln!(
            f,
            "{:>4} {:>22} {:>22} {:>22} {:>10}",
            row.bits,
            cell(by_method(QuantMethod::Linear)),
            cell(by_method(QuantMethod::KMeans)),
            cell(by_method(QuantMethod::Gobo)),
            super::fmt_ratio(row.potential_ratio),
        )?;
    }
    Ok(())
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table IV: G-group centroid selection policies")?;
        for sweep in &self.sweeps {
            fmt_sweep(f, sweep)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ZooScale;

    #[test]
    fn smoke_sweep_shapes_and_monotonicity() {
        let zoo = train_zoo_model(PaperModel::BertBase, TaskKind::Nli, ZooScale::Smoke).unwrap();
        let sweep = sweep_one(&zoo).unwrap();
        assert_eq!(sweep.rows.len(), BITS.len());
        for row in &sweep.rows {
            assert_eq!(row.cells.len(), 3);
            assert_eq!(row.cells[2].method, QuantMethod::Gobo);
        }
        // Potential CR column is pure arithmetic.
        assert!((sweep.rows[1].potential_ratio - 32.0 / 3.0).abs() < 1e-9);
        // At 6 bits every method should be close to the baseline.
        let last = sweep.rows.last().unwrap();
        for cell in &last.cells {
            assert!(cell.error.abs() < 0.25, "{:?}", cell);
        }
    }
}
