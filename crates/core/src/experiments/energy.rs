//! Extension experiment: off-chip traffic, energy and bandwidth-bound
//! latency per inference, FP32 vs GOBO-compressed (supports the paper's
//! title claims; see DESIGN.md §4, row "Extension").

use std::fmt;

use gobo_memsim::{EnergyModel, InferenceTraffic};
use gobo_model::footprint::Footprint;
use gobo_quant::mixed::MixedPrecisionPlan;
use gobo_quant::QuantMethod;

use super::ExperimentOptions;
use crate::analytic::{scaled_config, weight_compression};
use crate::error::GoboError;
use crate::zoo::PaperModel;

/// One model's energy/latency comparison at sequence length 128.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Which model.
    pub model: PaperModel,
    /// Measured GOBO 3-bit whole-weight compression ratio.
    pub compression_ratio: f64,
    /// FP32 off-chip bytes per inference.
    pub fp32_bytes: f64,
    /// GOBO off-chip bytes per inference.
    pub gobo_bytes: f64,
    /// FP32 energy, microjoules.
    pub fp32_energy_uj: f64,
    /// GOBO energy, microjoules.
    pub gobo_energy_uj: f64,
    /// FP32 bandwidth-bound latency, milliseconds.
    pub fp32_latency_ms: f64,
    /// GOBO bandwidth-bound latency, milliseconds.
    pub gobo_latency_ms: f64,
}

impl Row {
    /// Energy saving factor.
    pub fn energy_saving(&self) -> f64 {
        self.fp32_energy_uj / self.gobo_energy_uj
    }

    /// Latency saving factor.
    pub fn latency_saving(&self) -> f64 {
        self.fp32_latency_ms / self.gobo_latency_ms
    }
}

/// The energy/latency table.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyTable {
    /// One row per published model.
    pub rows: Vec<Row>,
    /// The technology constants used.
    pub model: EnergyModel,
}

/// Runs the energy extension for all five models (3-bit GOBO weights).
///
/// # Errors
///
/// Propagates quantization failures.
pub fn run(options: &ExperimentOptions) -> Result<EnergyTable, GoboError> {
    let energy_model = EnergyModel::default();
    let plan = MixedPrecisionPlan::uniform(3)?;
    let mut rows = Vec::new();
    for model in PaperModel::all() {
        let config = scaled_config(&model.config(), options.geometry_divisor)?;
        let report = weight_compression(&config, &plan, QuantMethod::Gobo, options.seed)?;
        let ratio = report.compression_ratio();
        // Traffic uses the full-scale footprint regardless of the smoke
        // divisor (the divisor only speeds the measured ratio up).
        let footprint = Footprint::of(&model.config(), 128);
        let fp32 = InferenceTraffic::fp32(&footprint);
        let gobo = fp32.with_weight_compression(ratio);
        rows.push(Row {
            model,
            compression_ratio: ratio,
            fp32_bytes: fp32.total_bytes(),
            gobo_bytes: gobo.total_bytes(),
            fp32_energy_uj: energy_model.energy(&fp32),
            gobo_energy_uj: energy_model.energy(&gobo),
            fp32_latency_ms: energy_model.latency_ms(&fp32),
            gobo_latency_ms: energy_model.latency_ms(&gobo),
        });
    }
    Ok(EnergyTable { rows, model: energy_model })
}

impl fmt::Display for EnergyTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Energy extension: per-inference off-chip traffic/energy/latency (seq 128, 3-bit GOBO)"
        )?;
        writeln!(
            f,
            "(DRAM {} pJ/B, SRAM {} pJ/B, {} GB/s)",
            self.model.dram_pj_per_byte,
            self.model.sram_pj_per_byte,
            self.model.dram_bytes_per_sec / 1e9
        )?;
        writeln!(
            f,
            "{:<16} {:>7} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}",
            "Model", "CR", "FP32 MB", "GOBO MB", "FP32 mJ", "GOBO mJ", "E-saving", "L-saving"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<16} {:>7} {:>12.1} {:>12.1} {:>12.2} {:>12.2} {:>8.2}x {:>8.2}x",
                r.model.name(),
                super::fmt_ratio(r.compression_ratio),
                r.fp32_bytes / 1e6,
                r.gobo_bytes / 1e6,
                r.fp32_energy_uj / 1e3,
                r.gobo_energy_uj / 1e3,
                r.energy_saving(),
                r.latency_saving(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_track_compression() {
        let t = run(&ExperimentOptions::smoke()).unwrap();
        assert_eq!(t.rows.len(), 5);
        for r in &t.rows {
            assert!(r.compression_ratio > 8.0, "{}", r.compression_ratio);
            assert!(r.energy_saving() > 4.0 && r.energy_saving() <= r.compression_ratio);
            assert!((r.energy_saving() - r.latency_saving()).abs() < 1e-9);
            assert!(r.gobo_bytes < r.fp32_bytes);
        }
        // Larger models save more absolute energy.
        let base = t.rows.iter().find(|r| r.model == PaperModel::BertBase).unwrap();
        let large = t.rows.iter().find(|r| r.model == PaperModel::BertLarge).unwrap();
        assert!(large.fp32_energy_uj > base.fp32_energy_uj * 2.0);
    }
}
