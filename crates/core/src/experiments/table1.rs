//! Table I: BERT architecture.

use std::fmt;

use gobo_model::config::ModelConfig;

/// One architecture row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// Encoder ("BERT") layer count.
    pub layers: usize,
    /// Attention FC dimensions (`4× hidden × hidden`).
    pub attention_dims: (usize, usize),
    /// Intermediate FC dimensions.
    pub intermediate_dims: (usize, usize),
    /// Output FC dimensions.
    pub output_dims: (usize, usize),
    /// Pooler dimensions.
    pub pooler_dims: (usize, usize),
}

/// The regenerated Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// BERT-Base and BERT-Large rows.
    pub rows: Vec<Row>,
}

/// Regenerates Table I from the model configurations.
pub fn run() -> Table1 {
    let rows = [ModelConfig::bert_base(), ModelConfig::bert_large()]
        .iter()
        .map(|c| Row {
            model: c.name.clone(),
            layers: c.encoder_layers,
            attention_dims: (c.hidden, c.hidden),
            intermediate_dims: (c.hidden, c.intermediate),
            output_dims: (c.intermediate, c.hidden),
            pooler_dims: (c.hidden, c.hidden),
        })
        .collect();
    Table1 { rows }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table I: BERT Architecture")?;
        writeln!(
            f,
            "{:<12} {:>7} {:>16} {:>16} {:>16} {:>14}",
            "Model", "Layers", "Attention", "Intermediate", "Output", "Pooler"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>7} {:>12} x4 {:>16} {:>16} {:>14}",
                r.model,
                r.layers,
                format!("{} x {}", r.attention_dims.0, r.attention_dims.1),
                format!("{} x {}", r.intermediate_dims.0, r.intermediate_dims.1),
                format!("{} x {}", r.output_dims.0, r.output_dims.1),
                format!("{} x {}", r.pooler_dims.0, r.pooler_dims.1),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table1() {
        let t = run();
        assert_eq!(t.rows.len(), 2);
        let base = &t.rows[0];
        assert_eq!(base.layers, 12);
        assert_eq!(base.attention_dims, (768, 768));
        assert_eq!(base.intermediate_dims, (768, 3072));
        assert_eq!(base.output_dims, (3072, 768));
        let large = &t.rows[1];
        assert_eq!(large.layers, 24);
        assert_eq!(large.attention_dims, (1024, 1024));
        assert_eq!(large.intermediate_dims, (1024, 4096));
    }

    #[test]
    fn display_contains_dims() {
        let s = run().to_string();
        assert!(s.contains("768 x 3072"));
        assert!(s.contains("1024 x 4096"));
    }
}
