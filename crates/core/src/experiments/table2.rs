//! Table II: BERT memory footprint.

use std::fmt;

use gobo_model::config::ModelConfig;
use gobo_model::footprint::{Footprint, MIB};

/// The regenerated Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// BERT-Base and BERT-Large footprints at sequence length 128.
    pub rows: Vec<Footprint>,
}

/// Regenerates Table II (sequence length 128, as in the paper).
pub fn run() -> Table2 {
    Table2 {
        rows: vec![
            Footprint::of(&ModelConfig::bert_base(), 128),
            Footprint::of(&ModelConfig::bert_large(), 128),
        ],
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table II: BERT Memory Footprint (seq len 128)")?;
        writeln!(
            f,
            "{:<28} {:>14} {:>14}",
            "Row",
            self.rows[0].model.as_str(),
            self.rows[1].model.as_str()
        )?;
        let fmt_mb = |bytes: usize| format!("{:.2} MB", bytes as f64 / MIB);
        let fmt_kb = |bytes: usize| format!("{} KB", bytes / 1024);
        writeln!(
            f,
            "{:<28} {:>14} {:>14}",
            "Embedding Tables",
            fmt_mb(self.rows[0].embedding_bytes),
            fmt_mb(self.rows[1].embedding_bytes)
        )?;
        writeln!(
            f,
            "{:<28} {:>14} {:>14}",
            "Weights",
            fmt_mb(self.rows[0].weight_bytes),
            fmt_mb(self.rows[1].weight_bytes)
        )?;
        writeln!(
            f,
            "{:<28} {:>14} {:>14}",
            "Model Input per Word",
            fmt_kb(self.rows[0].input_per_word_bytes),
            fmt_kb(self.rows[1].input_per_word_bytes)
        )?;
        writeln!(
            f,
            "{:<28} {:>14} {:>14}",
            "Largest layer Acts per Word",
            fmt_kb(self.rows[0].largest_acts_per_word_bytes),
            fmt_kb(self.rows[1].largest_acts_per_word_bytes)
        )?;
        writeln!(
            f,
            "{:<28} {:>14} {:>14}",
            "Activations",
            fmt_mb(self.rows[0].activation_bytes),
            fmt_mb(self.rows[1].activation_bytes)
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_values() {
        let t = run();
        assert!((t.rows[0].embedding_mib() - 89.42).abs() < 0.01);
        assert!((t.rows[1].embedding_mib() - 119.22).abs() < 0.01);
        assert!((t.rows[0].weight_mib() - 326.25).abs() < 0.5);
        assert_eq!(t.rows[0].input_per_word_bytes / 1024, 3);
        assert_eq!(t.rows[1].input_per_word_bytes / 1024, 4);
        assert_eq!(t.rows[0].largest_acts_per_word_bytes / 1024, 12);
        assert_eq!(t.rows[1].largest_acts_per_word_bytes / 1024, 16);
    }

    #[test]
    fn display_prints_rows() {
        let s = run().to_string();
        assert!(s.contains("Embedding Tables"));
        assert!(s.contains("89.42 MB"));
        assert!(s.contains("3 KB"));
    }
}
