//! Table VI: RoBERTa and RoBERTa-Large (MNLI-like), including the
//! paper's mixed 3b/4b policy for the sensitive Value/Intermediate
//! layers of the early encoders.

use std::fmt;

use gobo_model::config::ModelConfig;
use gobo_quant::mixed::MixedPrecisionPlan;
use gobo_quant::QuantMethod;
use gobo_tasks::TaskKind;

use super::table4::{fmt_sweep, Cell, Row, TaskSweep};
use super::ExperimentOptions;
use crate::analytic::{scaled_config, weight_compression};
use crate::error::GoboError;
use crate::pipeline::QuantizeOptions;
use crate::zoo::{train_zoo_model, PaperModel};

/// The mixed-precision row of one model's block.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedRow {
    /// Accuracy with the mixed plan.
    pub score: f64,
    /// Drop vs the FP32 baseline.
    pub error: f64,
    /// Whole-model weight compression ratio at full scale.
    pub compression_ratio: f64,
    /// How many leading encoders get 4-bit sensitive layers at full
    /// scale (6 for RoBERTa, 14 for RoBERTa-Large).
    pub sensitive_encoders: usize,
}

/// One model's block: the uniform sweep plus the mixed row.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelBlock {
    /// The uniform K-Means/GOBO sweep (bits 3–6).
    pub sweep: TaskSweep,
    /// The paper's 3b/4b mixed row.
    pub mixed: MixedRow,
}

/// The regenerated Table VI.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6 {
    /// RoBERTa then RoBERTa-Large.
    pub blocks: Vec<ModelBlock>,
}

/// Regenerates Table VI.
///
/// # Errors
///
/// Propagates training, quantization and evaluation failures.
pub fn run(options: &ExperimentOptions) -> Result<Table6, GoboError> {
    let mut blocks = Vec::new();
    for (paper, full_config, sensitive_full) in [
        (PaperModel::Roberta, ModelConfig::roberta_base(), 6usize),
        (PaperModel::RobertaLarge, ModelConfig::roberta_large(), 14usize),
    ] {
        let zoo = train_zoo_model(paper, TaskKind::Nli, options.zoo_scale)?;
        let mut rows = Vec::new();
        for bits in [3u8, 4, 5, 6] {
            let mut cells = Vec::new();
            for method in [QuantMethod::KMeans, QuantMethod::Gobo] {
                let opts = QuantizeOptions::with_method(method, bits)?;
                let (score, _) = zoo.quantized_score(&opts)?;
                cells.push(Cell {
                    method,
                    score: score.value,
                    error: zoo.baseline.value - score.value,
                });
            }
            rows.push(Row { bits, cells, potential_ratio: 32.0 / f64::from(bits) });
        }

        // Mixed 3b/4b: on the tiny stand-in the "first half" of the
        // encoder stack is sensitive; at full scale the paper's counts
        // (6 of 12, 14 of 24) drive the compression ratio.
        let tiny_sensitive = zoo.model.config().encoder_layers.div_ceil(2);
        let tiny_plan = MixedPrecisionPlan::roberta_sensitive(3, 4, tiny_sensitive)?;
        let opts = QuantizeOptions::gobo(3)?.with_weight_plan(tiny_plan);
        let (score, _) = zoo.quantized_score(&opts)?;
        let full = scaled_config(&full_config, options.geometry_divisor)?;
        let full_plan = MixedPrecisionPlan::roberta_sensitive(3, 4, sensitive_full)?;
        let report = weight_compression(&full, &full_plan, QuantMethod::Gobo, options.seed)?;
        let mixed = MixedRow {
            score: score.value,
            error: zoo.baseline.value - score.value,
            compression_ratio: report.compression_ratio(),
            sensitive_encoders: sensitive_full,
        };

        blocks.push(ModelBlock {
            sweep: TaskSweep {
                model: zoo.paper,
                kind: zoo.kind,
                baseline: zoo.baseline.value,
                rows,
            },
            mixed,
        });
    }
    Ok(Table6 { blocks })
}

impl fmt::Display for Table6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table VI: RoBERTa family (MNLI-like), incl. mixed 3b/4b")?;
        for block in &self.blocks {
            fmt_sweep(f, &block.sweep)?;
            writeln!(
                f,
                "3b/4b mixed ({} sensitive encoders): {} ({}), weight CR {}",
                block.mixed.sensitive_encoders,
                super::fmt_pct(block.mixed.score),
                super::fmt_pct(block.mixed.error),
                super::fmt_ratio(block.mixed.compression_ratio),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_blocks_and_mixed_ratio() {
        let t = run(&ExperimentOptions::smoke()).unwrap();
        assert_eq!(t.blocks.len(), 2);
        for block in &t.blocks {
            assert_eq!(block.sweep.rows.len(), 4);
            // Mixed ratio sits between uniform 3-bit (~10.x) and 4-bit (8x).
            let cr = block.mixed.compression_ratio;
            assert!(cr > 8.0 && cr < 10.67, "mixed CR {cr}");
        }
        // RoBERTa-Large's mixed plan covers more encoders → lower CR
        // relative ordering versus base is close; both near paper's
        // ~10.1/10.0.
        assert!(t.to_string().contains("mixed"));
    }
}
