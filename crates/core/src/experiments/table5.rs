//! Table V: centroid-selection policies on DistilBERT (MNLI-like).
//!
//! Same sweep as Table IV restricted to K-Means and GOBO at 3–5 bits,
//! matching the paper's reduced column set.

use std::fmt;

use gobo_quant::QuantMethod;
use gobo_tasks::TaskKind;

use super::table4::{fmt_sweep, Cell, Row, TaskSweep};
use super::ExperimentOptions;
use crate::error::GoboError;
use crate::pipeline::QuantizeOptions;
use crate::zoo::{train_zoo_model, PaperModel};

/// The regenerated Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5 {
    /// The DistilBERT MNLI sweep.
    pub sweep: TaskSweep,
}

/// Regenerates Table V.
///
/// # Errors
///
/// Propagates training, quantization and evaluation failures.
pub fn run(options: &ExperimentOptions) -> Result<Table5, GoboError> {
    let zoo = train_zoo_model(PaperModel::DistilBert, TaskKind::Nli, options.zoo_scale)?;
    let mut rows = Vec::new();
    for bits in [3u8, 4, 5] {
        let mut cells = Vec::new();
        for method in [QuantMethod::KMeans, QuantMethod::Gobo] {
            let opts = QuantizeOptions::with_method(method, bits)?;
            let (score, _) = zoo.quantized_score(&opts)?;
            cells.push(Cell {
                method,
                score: score.value,
                error: zoo.baseline.value - score.value,
            });
        }
        rows.push(Row { bits, cells, potential_ratio: 32.0 / f64::from(bits) });
    }
    Ok(Table5 {
        sweep: TaskSweep { model: zoo.paper, kind: zoo.kind, baseline: zoo.baseline.value, rows },
    })
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table V: centroid selection policies on DistilBERT")?;
        fmt_sweep(f, &self.sweep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_shape() {
        let t = run(&ExperimentOptions::smoke()).unwrap();
        assert_eq!(t.sweep.rows.len(), 3);
        assert_eq!(t.sweep.rows[0].bits, 3);
        assert_eq!(t.sweep.rows[0].cells.len(), 2);
        assert!(t.to_string().contains("DistilBERT"));
    }
}
