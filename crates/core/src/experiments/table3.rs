//! Table III: GOBO vs BERT-specific quantization methods (BERT-Base on
//! the MNLI-like task).
//!
//! Accuracy columns are measured on the tiny task-trained stand-in;
//! compression-ratio columns are computed on the full-scale BERT-Base
//! geometry (weights + all embedding tables), exactly as the paper
//! reports whole-model ratios.

use std::fmt;

use gobo_model::config::ModelConfig;
use gobo_quant::mixed::MixedPrecisionPlan;
use gobo_quant::reference::{GroupedDictionaryLayer, SymmetricQuantizedLayer};
use gobo_quant::QuantMethod;
use gobo_tasks::eval::evaluate;
use gobo_tasks::TaskKind;

use super::ExperimentOptions;
use crate::analytic::{embedding_compression, scaled_config, weight_compression};
use crate::error::GoboError;
use crate::pipeline::{transform_weights, QuantizeOptions};
use crate::zoo::{train_zoo_model, PaperModel};

/// Number of per-layer dictionary groups Q-BERT uses at full scale.
pub const QBERT_GROUPS: usize = 128;

/// One comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Method name as printed in the paper.
    pub method: String,
    /// Weight representation description (`"3-bit"`, `"FP32"`, …).
    pub weights: String,
    /// Embedding representation description.
    pub embedding: String,
    /// Measured accuracy on the stand-in task, in `[0, 1]`.
    pub accuracy: f64,
    /// Accuracy drop vs the FP32 baseline.
    pub error: f64,
    /// Whether the method works without fine-tuning (GOBO's claim).
    pub no_fine_tuning: bool,
    /// Whole-model compression ratio at full scale.
    pub compression_ratio: f64,
}

/// The regenerated Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// Rows in the paper's order: baseline, Q8BERT, Q-BERT 3/4-bit,
    /// GOBO 3/4-bit.
    pub rows: Vec<Row>,
}

/// Regenerates Table III.
///
/// # Errors
///
/// Propagates training, quantization and evaluation failures.
pub fn run(options: &ExperimentOptions) -> Result<Table3, GoboError> {
    let zoo = train_zoo_model(PaperModel::BertBase, TaskKind::Nli, options.zoo_scale)?;
    let full = scaled_config(&ModelConfig::bert_base(), options.geometry_divisor)?;
    let baseline = zoo.baseline.value;
    let mut rows = vec![Row {
        method: "Baseline".into(),
        weights: "FP32".into(),
        embedding: "FP32".into(),
        accuracy: baseline,
        error: 0.0,
        no_fine_tuning: true,
        compression_ratio: 1.0,
    }];

    // --- Q8BERT-style: symmetric 8-bit everything -----------------------
    let q8_model = transform_weights(&zoo.model, true, |_name, w| {
        Ok(SymmetricQuantizedLayer::encode(w)?.decode())
    })?;
    let q8_score = evaluate(&q8_model, &zoo.head, &zoo.test_data)?;
    rows.push(Row {
        method: "Q8BERT".into(),
        weights: "8-bit".into(),
        embedding: "8-bit".into(),
        accuracy: q8_score.value,
        error: baseline - q8_score.value,
        no_fine_tuning: false,
        compression_ratio: q8bert_ratio(&full),
    });

    // --- Q-BERT-style: grouped dictionaries + 8-bit embeddings ----------
    for bits in [3u8, 4] {
        let q_model = transform_weights(&zoo.model, true, |name, w| {
            if name.starts_with("embeddings.") {
                Ok(SymmetricQuantizedLayer::encode(w)?.decode())
            } else {
                // Scale the group count down with the layer so tiny
                // layers keep a meaningful per-group population.
                let groups = QBERT_GROUPS.min((w.len() / 64).max(1));
                Ok(GroupedDictionaryLayer::encode(w, bits, groups)?.decode())
            }
        })?;
        let q_score = evaluate(&q_model, &zoo.head, &zoo.test_data)?;
        rows.push(Row {
            method: "Q-BERT".into(),
            weights: format!("{bits}-bit"),
            embedding: "8-bit".into(),
            accuracy: q_score.value,
            error: baseline - q_score.value,
            no_fine_tuning: false,
            compression_ratio: qbert_ratio(&full, bits),
        });
    }

    // --- GOBO: 3/4-bit weights + 4-bit embeddings ------------------------
    for bits in [3u8, 4] {
        let opts = QuantizeOptions::gobo(bits)?.with_embedding_bits(4)?;
        let (score, _report) = zoo.quantized_score(&opts)?;
        rows.push(Row {
            method: "GOBO".into(),
            weights: format!("{bits}-bit"),
            embedding: "4-bit".into(),
            accuracy: score.value,
            error: baseline - score.value,
            no_fine_tuning: true,
            compression_ratio: gobo_ratio(&full, bits, 4, options.seed)?,
        });
    }

    Ok(Table3 { rows })
}

/// Q8BERT's whole-model ratio: every parameter to one byte plus one
/// FP32 scale per layer/table.
fn q8bert_ratio(config: &ModelConfig) -> f64 {
    let params = config.fc_weight_params() + config.embedding_params();
    let tables = config.fc_layer_count() + 3;
    (params * 4) as f64 / (params + 4 * tables) as f64
}

/// Q-BERT's whole-model ratio: `bits`-bit weight indices with 128
/// per-layer dictionaries, embeddings at 8 bits.
fn qbert_ratio(config: &ModelConfig, bits: u8) -> f64 {
    let w = config.fc_weight_params();
    let e = config.embedding_params();
    let orig = (w + e) * 4;
    let dict_bytes = config.fc_layer_count() * QBERT_GROUPS * (1usize << bits) * 4;
    let comp = w * bits as usize / 8 + dict_bytes + e;
    orig as f64 / comp as f64
}

/// GOBO's whole-model ratio measured on synthetic full-scale weights
/// (includes outliers, codebooks and headers exactly).
fn gobo_ratio(
    config: &ModelConfig,
    weight_bits: u8,
    embedding_bits: u8,
    seed: u64,
) -> Result<f64, GoboError> {
    let plan = MixedPrecisionPlan::uniform(weight_bits)?;
    let mut report = weight_compression(config, &plan, QuantMethod::Gobo, seed)?;
    report.merge(embedding_compression(config, embedding_bits, seed)?);
    Ok(report.compression_ratio())
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table III: GOBO vs BERT-specific quantization (BERT-Base, MNLI-like)")?;
        writeln!(
            f,
            "{:<10} {:>8} {:>10} {:>10} {:>8} {:>15} {:>8}",
            "Method", "Weights", "Embedding", "Accuracy", "Error", "No Fine-tuning", "CR"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>8} {:>10} {:>10} {:>8} {:>15} {:>8}",
                r.method,
                r.weights,
                r.embedding,
                super::fmt_pct(r.accuracy),
                super::fmt_pct(r.error),
                if r.no_fine_tuning { "yes" } else { "no" },
                super::fmt_ratio(r.compression_ratio),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_reference_ratios_match_paper() {
        // These are pure geometry, independent of training scale.
        let base = ModelConfig::bert_base();
        assert!((q8bert_ratio(&base) - 4.0).abs() < 0.01);
        let q3 = qbert_ratio(&base, 3);
        assert!((q3 - 7.81).abs() < 0.5, "Q-BERT 3-bit CR {q3} (paper: 7.81)");
        let q4 = qbert_ratio(&base, 4);
        assert!((q4 - 6.52).abs() < 0.5, "Q-BERT 4-bit CR {q4} (paper: 6.52)");
    }

    #[test]
    fn smoke_table_has_expected_shape() {
        let t = run(&ExperimentOptions::smoke()).unwrap();
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.rows[0].method, "Baseline");
        // GOBO's ratio beats Q-BERT's and Q8BERT's at the same bits.
        let gobo3 = &t.rows[4];
        assert_eq!(gobo3.method, "GOBO");
        assert!(gobo3.compression_ratio > t.rows[1].compression_ratio);
        assert!(gobo3.compression_ratio > t.rows[2].compression_ratio);
        // Display renders.
        assert!(t.to_string().contains("GOBO"));
    }
}
