//! Ablation: how much do the outliers matter, and how sensitive is
//! GOBO to the log-pdf threshold?
//!
//! The paper fixes the threshold at -4 and asserts that "representing
//! just the outliers precisely and quantizing the rest ... is
//! sufficient", and conversely that dropping outliers "sacrificed
//! accuracy". This driver sweeps the threshold on the MNLI-like
//! stand-in and adds a no-outlier row.

use std::fmt;

use gobo_tasks::TaskKind;

use super::ExperimentOptions;
use crate::error::GoboError;
use crate::pipeline::QuantizeOptions;
use crate::zoo::{train_zoo_model, PaperModel};

/// One threshold row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Log-pdf threshold, or `None` for the no-outlier ablation.
    pub threshold: Option<f64>,
    /// Whole-model outlier fraction.
    pub outlier_fraction: f64,
    /// Measured accuracy.
    pub accuracy: f64,
    /// Drop vs the FP32 baseline.
    pub error: f64,
    /// Whole-model (tiny) compression ratio.
    pub compression_ratio: f64,
}

/// The ablation table.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationTable {
    /// FP32 baseline accuracy.
    pub baseline: f64,
    /// Threshold sweep rows (most permissive first) plus the no-outlier
    /// row (threshold `None`).
    pub rows: Vec<Row>,
}

/// Thresholds swept (the paper's default is -4).
pub const THRESHOLDS: [f64; 4] = [-2.0, -4.0, -6.0, -8.0];

/// Runs the ablation at 3-bit GOBO on the BERT-Base MNLI stand-in.
///
/// # Errors
///
/// Propagates training, quantization and evaluation failures.
pub fn run(options: &ExperimentOptions) -> Result<AblationTable, GoboError> {
    let zoo = train_zoo_model(PaperModel::BertBase, TaskKind::Nli, options.zoo_scale)?;
    let mut rows = Vec::new();
    for thr in THRESHOLDS {
        let opts = QuantizeOptions::gobo(3)?.with_outlier_threshold(thr);
        let (score, report) = zoo.quantized_score(&opts)?;
        rows.push(Row {
            threshold: Some(thr),
            outlier_fraction: report.outlier_fraction(),
            accuracy: score.value,
            error: zoo.baseline.value - score.value,
            compression_ratio: report.compression_ratio(),
        });
    }
    let opts = QuantizeOptions::gobo(3)?.without_outliers();
    let (score, report) = zoo.quantized_score(&opts)?;
    rows.push(Row {
        threshold: None,
        outlier_fraction: 0.0,
        accuracy: score.value,
        error: zoo.baseline.value - score.value,
        compression_ratio: report.compression_ratio(),
    });
    Ok(AblationTable { baseline: zoo.baseline.value, rows })
}

impl fmt::Display for AblationTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation: outlier threshold (3-bit GOBO, MNLI-like, baseline {})",
            super::fmt_pct(self.baseline)
        )?;
        writeln!(
            f,
            "{:>10} {:>10} {:>10} {:>8} {:>8}",
            "Threshold", "Outliers", "Accuracy", "Error", "CR"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>10} {:>9.3}% {:>10} {:>8} {:>8}",
                r.threshold.map_or("none".into(), |t| format!("{t}")),
                r.outlier_fraction * 100.0,
                super::fmt_pct(r.accuracy),
                super::fmt_pct(r.error),
                super::fmt_ratio(r.compression_ratio),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_threshold_monotonicity() {
        let t = run(&ExperimentOptions::smoke()).unwrap();
        assert_eq!(t.rows.len(), THRESHOLDS.len() + 1);
        // More permissive threshold (closer to 0) ⇒ more outliers and a
        // lower compression ratio.
        let fractions: Vec<f64> =
            t.rows[..THRESHOLDS.len()].iter().map(|r| r.outlier_fraction).collect();
        for w in fractions.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "fractions not monotone: {fractions:?}");
        }
        let crs: Vec<f64> =
            t.rows[..THRESHOLDS.len()].iter().map(|r| r.compression_ratio).collect();
        for w in crs.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "ratios not monotone: {crs:?}");
        }
        // The no-outlier row compresses hardest (nothing stored FP32).
        let none = t.rows.last().unwrap();
        assert!(none.compression_ratio >= crs[crs.len() - 1] - 1e-9);
        assert!(t.to_string().contains("none"));
    }
}
