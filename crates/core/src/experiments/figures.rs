//! Figure drivers: 1b (weight distributions), 1c (outlier scatter),
//! 2 (convergence race), 3 (per-layer outlier fractions), 4 (embedding
//! quantization effect).

use std::fmt;

use gobo_model::config::ModelConfig;
use gobo_stats::Histogram;
use gobo_tasks::TaskKind;

use super::ExperimentOptions;
use crate::analytic::{
    convergence_comparison, layer_scatter, outlier_profile, scaled_config, weight_histogram,
    ConvergenceComparison, OutlierPoint,
};
use crate::error::GoboError;
use crate::pipeline::QuantizeOptions;
use crate::zoo::{train_zoo_model, PaperModel};

/// Figure 1b: per-layer weight histograms for a few layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure1b {
    /// `(layer index, histogram)` pairs for the paper's layers 5, 10,
    /// 15, 20, 25.
    pub layers: Vec<(usize, Histogram)>,
}

/// Regenerates Figure 1b.
///
/// # Errors
///
/// Propagates histogram failures.
pub fn figure1b(options: &ExperimentOptions) -> Result<Figure1b, GoboError> {
    let config = scaled_config(&ModelConfig::bert_base(), options.geometry_divisor)?;
    let mut layers = Vec::new();
    for idx in [5usize, 10, 15, 20, 25] {
        layers.push((idx, weight_histogram(&config, idx, 41, options.seed)?));
    }
    Ok(Figure1b { layers })
}

impl fmt::Display for Figure1b {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 1b: per-layer weight distributions (BERT-Base)")?;
        for (idx, h) in &self.layers {
            let max = h.counts().iter().copied().max().unwrap_or(1).max(1);
            writeln!(f, "\nLayer {idx} (range {:.3}..{:.3}):", h.lo(), h.hi())?;
            for bin in 0..h.bins() {
                let bar = "#".repeat((h.counts()[bin] * 40 / max) as usize);
                writeln!(f, "{:>8.3} |{bar}", h.bin_center(bin))?;
            }
        }
        Ok(())
    }
}

/// Figure 1c: one layer's weights with outlier flags.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure1c {
    /// Downsampled `(weight, is_outlier)` points.
    pub points: Vec<(f32, bool)>,
    /// Number of outliers among the points.
    pub outliers: usize,
}

/// Regenerates Figure 1c.
///
/// # Errors
///
/// Propagates quantization failures.
pub fn figure1c(options: &ExperimentOptions) -> Result<Figure1c, GoboError> {
    let config = scaled_config(&ModelConfig::bert_base(), options.geometry_divisor)?;
    let points = layer_scatter(&config, 30, 4000, options.seed)?;
    let outliers = points.iter().filter(|(_, o)| *o).count();
    Ok(Figure1c { points, outliers })
}

impl fmt::Display for Figure1c {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 1c: layer weights and outliers (BERT-Base, one layer)")?;
        writeln!(f, "points: {}, flagged outliers: {}", self.points.len(), self.outliers)?;
        let bulk_max =
            self.points.iter().filter(|(_, o)| !*o).map(|(w, _)| w.abs()).fold(0.0f32, f32::max);
        writeln!(f, "bulk |w| <= {bulk_max:.4}; sample outliers:")?;
        for (w, _) in self.points.iter().filter(|(_, o)| *o).take(10) {
            writeln!(f, "  {w:+.4}")?;
        }
        Ok(())
    }
}

/// Regenerates Figure 2 (GOBO vs K-Means convergence on a
/// representative layer, 3-bit).
///
/// # Errors
///
/// Propagates quantization failures.
pub fn figure2(options: &ExperimentOptions) -> Result<ConvergenceComparison, GoboError> {
    let config = scaled_config(&ModelConfig::bert_base(), options.geometry_divisor)?;
    convergence_comparison(&config, 3, options.seed)
}

/// Figure 3 output: the per-layer outlier profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure3 {
    /// One point per FC layer of BERT-Base.
    pub points: Vec<OutlierPoint>,
    /// Weight-weighted model average outlier fraction (paper: ≈0.1%).
    pub average: f64,
}

/// Regenerates Figure 3.
///
/// # Errors
///
/// Propagates quantization failures.
pub fn figure3(options: &ExperimentOptions) -> Result<Figure3, GoboError> {
    let config = scaled_config(&ModelConfig::bert_base(), options.geometry_divisor)?;
    let points = outlier_profile(&config, gobo_quant::DEFAULT_LOG_PDF_THRESHOLD, options.seed)?;
    let average = points.iter().map(|p| p.fraction).sum::<f64>() / points.len() as f64;
    Ok(Figure3 { points, average })
}

impl fmt::Display for Figure3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 3: per-FC-layer outlier percentage (BERT-Base)")?;
        for p in &self.points {
            let bar = "#".repeat((p.fraction * 4000.0) as usize);
            writeln!(
                f,
                "{:>3} {:<28} {:>7.3}% |{bar}",
                p.layer_index + 1,
                p.name,
                p.fraction * 100.0
            )?;
        }
        writeln!(f, "average: {:.3}%", self.average * 100.0)
    }
}

/// One model's Figure 4 bars.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure4Row {
    /// Which model.
    pub model: PaperModel,
    /// FP32 baseline score.
    pub baseline: f64,
    /// FP32 weights, 3-bit embeddings (normalized score).
    pub fp32_model_3bit_embed: f64,
    /// FP32 weights, 4-bit embeddings.
    pub fp32_model_4bit_embed: f64,
    /// 3-bit GOBO weights + 3-bit embeddings.
    pub gobo_3bit_embed: f64,
    /// 3-bit GOBO weights + 4-bit embeddings.
    pub gobo_4bit_embed: f64,
}

/// The regenerated Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure4 {
    /// One row per published model, scores normalized to the baseline.
    pub rows: Vec<Figure4Row>,
}

/// Regenerates Figure 4 (normalized accuracy under embedding
/// quantization, with and without weight quantization).
///
/// # Errors
///
/// Propagates training, quantization and evaluation failures.
pub fn figure4(options: &ExperimentOptions) -> Result<Figure4, GoboError> {
    let mut rows = Vec::new();
    for model in PaperModel::all() {
        let zoo = train_zoo_model(model, TaskKind::Nli, options.zoo_scale)?;
        let norm = |v: f64| v / zoo.baseline.value;
        let score = |opts: &QuantizeOptions| -> Result<f64, GoboError> {
            Ok(zoo.quantized_score(opts)?.0.value)
        };
        let embed_only = |bits: u8| -> Result<f64, GoboError> {
            score(&QuantizeOptions::gobo(3)?.with_embedding_bits(bits)?.embeddings_only())
        };
        let full = |bits: u8| -> Result<f64, GoboError> {
            score(&QuantizeOptions::gobo(3)?.with_embedding_bits(bits)?)
        };
        rows.push(Figure4Row {
            model,
            baseline: zoo.baseline.value,
            fp32_model_3bit_embed: norm(embed_only(3)?),
            fp32_model_4bit_embed: norm(embed_only(4)?),
            gobo_3bit_embed: norm(full(3)?),
            gobo_4bit_embed: norm(full(4)?),
        });
    }
    Ok(Figure4 { rows })
}

impl fmt::Display for Figure4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4: embedding quantization effect (normalized accuracy)")?;
        writeln!(
            f,
            "{:<16} {:>10} {:>16} {:>16} {:>16} {:>16}",
            "Model", "Baseline", "FP32+3b embed", "FP32+4b embed", "GOBO+3b embed", "GOBO+4b embed"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<16} {:>10} {:>16.4} {:>16.4} {:>16.4} {:>16.4}",
                r.model.name(),
                super::fmt_pct(r.baseline),
                r.fp32_model_3bit_embed,
                r.fp32_model_4bit_embed,
                r.gobo_3bit_embed,
                r.gobo_4bit_embed,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1b_histograms_are_bellish() {
        let fig = figure1b(&ExperimentOptions::smoke()).unwrap();
        assert_eq!(fig.layers.len(), 5);
        for (idx, h) in &fig.layers {
            // The bulk peak dwarfs the fringe bins (which only hold
            // outliers), and sits strictly inside the range.
            let (peak_bin, peak) = h
                .counts()
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, &c)| (i, c))
                .unwrap();
            assert!(peak_bin > 0 && peak_bin < h.bins() - 1, "layer {idx}");
            assert!(peak > 10 * h.counts()[0].max(1), "layer {idx}");
            assert!(peak > 10 * h.counts()[h.bins() - 1].max(1), "layer {idx}");
        }
    }

    #[test]
    fn figure1c_finds_outliers() {
        let fig = figure1c(&ExperimentOptions::smoke()).unwrap();
        assert!(fig.outliers > 0);
        assert!(fig.outliers < fig.points.len() / 10);
    }

    #[test]
    fn figure2_speedup_positive() {
        let cmp = figure2(&ExperimentOptions::smoke()).unwrap();
        assert!(cmp.iteration_speedup() > 1.5);
    }

    #[test]
    fn figure3_average_is_small() {
        let fig = figure3(&ExperimentOptions::smoke()).unwrap();
        assert_eq!(fig.points.len(), 73);
        assert!(fig.average < 0.01, "average {}", fig.average);
    }
}
