//! The paper's headline claims in one summary table:
//!
//! 1. 99.9% of weights quantized to 3 bits (outliers ≈ 0.1%);
//! 2. centroid selection converges ~9× faster than K-Means;
//! 3. GOBO needs roughly half the centroids K-Means does for the same
//!    accuracy (one fewer index bit);
//! 4. ~10× model footprint reduction.

use std::fmt;

use gobo_model::config::ModelConfig;
use gobo_quant::mixed::MixedPrecisionPlan;
use gobo_quant::QuantMethod;
use gobo_tasks::TaskKind;

use super::ExperimentOptions;
use crate::analytic::{
    convergence_comparison, embedding_compression, scaled_config, weight_compression,
};
use crate::error::GoboError;
use crate::pipeline::QuantizeOptions;
use crate::zoo::{train_zoo_model, PaperModel, ZooModel};

/// Measured values for the headline claims.
#[derive(Debug, Clone, PartialEq)]
pub struct Headline {
    /// Fraction of BERT-Base weights in the 3-bit G group.
    pub g_group_fraction: f64,
    /// GOBO vs K-Means iteration speedup on a representative layer.
    pub convergence_speedup: f64,
    /// Smallest index width at which GOBO stays within `tolerance` of
    /// the baseline on the MNLI-like stand-in.
    pub gobo_bits_to_lossless: Option<u8>,
    /// The same for K-Means.
    pub kmeans_bits_to_lossless: Option<u8>,
    /// Accuracy tolerance used for "lossless".
    pub tolerance: f64,
    /// Whole-model compression ratio at 3-bit weights + 3-bit
    /// embeddings.
    pub footprint_reduction: f64,
}

/// Accuracy slack treated as lossless (the paper's tables use exact
/// recovery; sampling noise on 300 synthetic examples warrants a small
/// band).
pub const LOSSLESS_TOLERANCE: f64 = 0.005;

/// Computes the headline summary.
///
/// # Errors
///
/// Propagates training, quantization and evaluation failures.
pub fn run(options: &ExperimentOptions) -> Result<Headline, GoboError> {
    let config = scaled_config(&ModelConfig::bert_base(), options.geometry_divisor)?;

    let weight_report = weight_compression(
        &config,
        &MixedPrecisionPlan::uniform(3)?,
        QuantMethod::Gobo,
        options.seed,
    )?;
    let g_group_fraction = 1.0 - weight_report.outlier_fraction();

    let cmp = convergence_comparison(&config, 3, options.seed)?;

    let zoo = train_zoo_model(PaperModel::BertBase, TaskKind::Nli, options.zoo_scale)?;
    let gobo_bits = bits_to_lossless(&zoo, QuantMethod::Gobo)?;
    let kmeans_bits = bits_to_lossless(&zoo, QuantMethod::KMeans)?;

    let mut footprint = weight_report;
    footprint.merge(embedding_compression(&config, 3, options.seed)?);

    Ok(Headline {
        g_group_fraction,
        convergence_speedup: cmp.iteration_speedup(),
        gobo_bits_to_lossless: gobo_bits,
        kmeans_bits_to_lossless: kmeans_bits,
        tolerance: LOSSLESS_TOLERANCE,
        footprint_reduction: footprint.compression_ratio(),
    })
}

/// Smallest width in `2..=8` whose quantized score is within
/// [`LOSSLESS_TOLERANCE`] of the baseline.
fn bits_to_lossless(zoo: &ZooModel, method: QuantMethod) -> Result<Option<u8>, GoboError> {
    for bits in 2u8..=8 {
        let opts = QuantizeOptions::with_method(method, bits)?;
        let (score, _) = zoo.quantized_score(&opts)?;
        if score.value >= zoo.baseline.value - LOSSLESS_TOLERANCE {
            return Ok(Some(bits));
        }
    }
    Ok(None)
}

impl fmt::Display for Headline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Headline claims")?;
        writeln!(
            f,
            "G-group fraction at 3 bits:     {:.3}% (paper: ~99.9%)",
            self.g_group_fraction * 100.0
        )?;
        writeln!(
            f,
            "Convergence speedup vs K-Means: {:.1}x (paper: ~9x)",
            self.convergence_speedup
        )?;
        let bits = |b: Option<u8>| b.map_or("-".into(), |v| format!("{v}"));
        writeln!(
            f,
            "Bits to lossless (±{:.1}pp):     GOBO {} vs K-Means {} (paper: GOBO needs half the centroids)",
            self.tolerance * 100.0,
            bits(self.gobo_bits_to_lossless),
            bits(self.kmeans_bits_to_lossless)
        )?;
        writeln!(
            f,
            "Footprint reduction (3b/3b):    {:.2}x (paper: ~10x)",
            self.footprint_reduction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_headline_values_in_band() {
        let h = run(&ExperimentOptions::smoke()).unwrap();
        assert!(h.g_group_fraction > 0.99);
        assert!(h.convergence_speedup > 1.5);
        assert!(h.footprint_reduction > 9.0 && h.footprint_reduction < 10.67);
        // Lossless bits, when found, are ordered sensibly.
        if let (Some(g), Some(k)) = (h.gobo_bits_to_lossless, h.kmeans_bits_to_lossless) {
            assert!((2..=8).contains(&g));
            assert!((2..=8).contains(&k));
        }
        assert!(h.to_string().contains("Headline"));
    }
}
