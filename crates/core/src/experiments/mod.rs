//! One driver per paper table and figure.
//!
//! Every driver returns typed rows and implements `Display` printing a
//! paper-style text table, so the `regen-tables` / `regen-figures`
//! binaries are thin wrappers. The DESIGN.md experiment index maps each
//! table/figure to its driver here.

pub mod ablation;
pub mod energy;
pub mod figures;
pub mod headline;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;

use crate::zoo::ZooScale;

/// Shared experiment sizing.
///
/// `full()` reproduces the paper's exact geometry and the reference
/// training budget (run in release mode); `smoke()` shrinks both so the
/// whole suite runs in debug-mode tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentOptions {
    /// Divisor applied to full-scale synthetic geometry (1 = exact).
    pub geometry_divisor: usize,
    /// Training budget for the tiny model zoo.
    pub zoo_scale: ZooScale,
    /// Seed for synthetic weights and data.
    pub seed: u64,
}

impl ExperimentOptions {
    /// The reference setting used for EXPERIMENTS.md numbers.
    pub fn full() -> Self {
        ExperimentOptions { geometry_divisor: 1, zoo_scale: ZooScale::Full, seed: 7 }
    }

    /// A fast setting for debug-mode smoke tests.
    pub fn smoke() -> Self {
        ExperimentOptions { geometry_divisor: 16, zoo_scale: ZooScale::Smoke, seed: 7 }
    }
}

/// Formats a ratio as the paper prints it (`9.83x`).
pub(crate) fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats an accuracy-like fraction as a percentage (`83.76%`).
pub(crate) fn fmt_pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_presets() {
        assert_eq!(ExperimentOptions::full().geometry_divisor, 1);
        assert!(ExperimentOptions::smoke().geometry_divisor > 1);
    }

    #[test]
    fn formatting_matches_paper_style() {
        assert_eq!(fmt_ratio(9.832), "9.83x");
        assert_eq!(fmt_pct(0.8376), "83.76%");
    }
}
