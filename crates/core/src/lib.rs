//! GOBO: post-training quantization for attention-based NLP models.
//!
//! This crate is the end-to-end public API of the reproduction of
//! *"GOBO: Quantizing Attention-Based NLP Models for Low Latency and
//! Energy Efficient Inference"* (MICRO 2020). It ties the substrate
//! crates together:
//!
//! * [`pipeline`] — quantize a whole [`gobo_model::TransformerModel`]
//!   (any method × per-layer bit plan × optional embedding
//!   quantization), producing a decoded FP32 model plus an exact
//!   [`gobo_quant::CompressionReport`];
//! * [`zoo`] — the deterministic "model zoo": tiny task-trained stand-ins
//!   for the five published checkpoints the paper quantizes;
//! * [`analytic`] — full-scale synthetic-weight experiments (outlier
//!   fractions, compression ratios, convergence traces) streamed one
//!   layer at a time so BERT-Large never has to be resident;
//! * [`experiments`] — one driver per paper table and figure,
//!   regenerating each row/series;
//! * [`format`] — the `.gobom` compressed-model container (model
//!   configuration + FP32 auxiliary parameters + quantized archive),
//!   shared by the CLI and the serving subsystem.
//!
//! # Quickstart
//!
//! ```
//! use gobo::pipeline::{quantize_model, QuantizeOptions};
//! use gobo_model::{config::ModelConfig, TransformerModel};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A small random model (real uses start from a trained one).
//! let config = ModelConfig::tiny("Demo", 2, 32, 4, 64, 16)?;
//! let model = TransformerModel::new(config, &mut StdRng::seed_from_u64(1))?;
//!
//! // Quantize every FC layer to 3-bit GOBO.
//! let options = QuantizeOptions::gobo(3)?;
//! let outcome = quantize_model(&model, &options)?;
//!
//! assert!(outcome.report.compression_ratio() > 5.0);
//! // The decoded model has identical architecture and runs unmodified.
//! let out = outcome.model.encode(&[1, 2, 3], &[])?;
//! assert!(out.hidden.all_finite());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod analytic;
pub mod error;
pub mod experiments;
pub mod format;
mod par;
pub mod pipeline;
pub mod zoo;

pub use error::GoboError;
pub use format::CompressedModel;
pub use pipeline::{quantize_model, QuantizeOptions, QuantizedModel};
