//! Top-level error type.

use std::fmt;

use gobo_model::ModelError;
use gobo_quant::QuantError;
use gobo_tasks::TaskError;

/// Error returned by the end-to-end pipeline and experiment drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum GoboError {
    /// Quantization failed.
    Quant(QuantError),
    /// Model construction or inference failed.
    Model(ModelError),
    /// Task training or evaluation failed.
    Task(TaskError),
    /// An experiment was asked for an unsupported configuration.
    InvalidExperiment {
        /// Description of the problem.
        what: &'static str,
    },
}

impl fmt::Display for GoboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoboError::Quant(e) => write!(f, "quantization failure: {e}"),
            GoboError::Model(e) => write!(f, "model failure: {e}"),
            GoboError::Task(e) => write!(f, "task failure: {e}"),
            GoboError::InvalidExperiment { what } => write!(f, "invalid experiment: {what}"),
        }
    }
}

impl std::error::Error for GoboError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GoboError::Quant(e) => Some(e),
            GoboError::Model(e) => Some(e),
            GoboError::Task(e) => Some(e),
            GoboError::InvalidExperiment { .. } => None,
        }
    }
}

impl From<QuantError> for GoboError {
    fn from(e: QuantError) -> Self {
        GoboError::Quant(e)
    }
}

impl From<ModelError> for GoboError {
    fn from(e: ModelError) -> Self {
        GoboError::Model(e)
    }
}

impl From<TaskError> for GoboError {
    fn from(e: TaskError) -> Self {
        GoboError::Task(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        use std::error::Error;
        let e: GoboError = QuantError::EmptyLayer.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("quantization"));
        let e: GoboError = ModelError::InvalidConfig { name: "hidden" }.into();
        assert!(e.to_string().contains("model"));
        let e: GoboError = TaskError::EmptyDataset.into();
        assert!(e.to_string().contains("task"));
        assert!(GoboError::InvalidExperiment { what: "x" }.source().is_none());
    }
}
