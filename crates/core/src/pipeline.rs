//! Whole-model quantization.
//!
//! [`quantize_model`] applies a quantization policy to every FC layer
//! (and optionally every embedding table) of a
//! [`TransformerModel`], in parallel across layers, and returns both
//! the decoded plug-in-compatible FP32 model and the exact compression
//! report.

use gobo_model::{ModelError, TransformerModel};
use gobo_quant::container::ModelArchive;
use gobo_quant::mixed::MixedPrecisionPlan;
use gobo_quant::{
    CompressionReport, LayerReport, QuantConfig, QuantError, QuantMethod, QuantizedLayer,
};
use gobo_tensor::Tensor;

use crate::error::GoboError;

/// What to quantize and how.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizeOptions {
    method: QuantMethod,
    weight_plan: MixedPrecisionPlan,
    embedding_bits: Option<u8>,
    outlier_threshold: f64,
    max_iterations: usize,
    detect_outliers: bool,
    quantize_weights: bool,
}

impl QuantizeOptions {
    /// GOBO quantization of all FC weights at a uniform bit width, with
    /// the paper's defaults (outlier threshold -4; embeddings left
    /// FP32 — add them with [`QuantizeOptions::with_embedding_bits`]).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBits`] (as [`GoboError::Quant`])
    /// for widths outside `1..=8`.
    pub fn gobo(bits: u8) -> Result<Self, GoboError> {
        Self::with_method(QuantMethod::Gobo, bits)
    }

    /// Uniform-width quantization with an arbitrary centroid policy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantizeOptions::gobo`].
    pub fn with_method(method: QuantMethod, bits: u8) -> Result<Self, GoboError> {
        Ok(QuantizeOptions {
            method,
            weight_plan: MixedPrecisionPlan::uniform(bits).map_err(GoboError::from)?,
            embedding_bits: None,
            outlier_threshold: gobo_quant::DEFAULT_LOG_PDF_THRESHOLD,
            max_iterations: 100,
            detect_outliers: true,
            quantize_weights: true,
        })
    }

    /// Replaces the per-layer bit plan (e.g. the paper's RoBERTa
    /// "sensitive layers at 4b" policy).
    pub fn with_weight_plan(mut self, plan: MixedPrecisionPlan) -> Self {
        self.weight_plan = plan;
        self
    }

    /// Also quantizes the embedding tables at `bits`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBits`] (as [`GoboError::Quant`])
    /// for widths outside `1..=8`.
    pub fn with_embedding_bits(mut self, bits: u8) -> Result<Self, GoboError> {
        if !(1..=8).contains(&bits) {
            return Err(QuantError::UnsupportedBits { bits }.into());
        }
        self.embedding_bits = Some(bits);
        Ok(self)
    }

    /// Skips FC weights (embedding-only quantization, as in the first
    /// scenario of the paper's Figure 4).
    pub fn embeddings_only(mut self) -> Self {
        self.quantize_weights = false;
        self
    }

    /// Overrides the outlier log-pdf threshold (default -4).
    pub fn with_outlier_threshold(mut self, threshold: f64) -> Self {
        self.outlier_threshold = threshold;
        self
    }

    /// Disables outlier preservation entirely (ablation).
    pub fn without_outliers(mut self) -> Self {
        self.detect_outliers = false;
        self
    }

    /// The active centroid policy.
    pub fn method(&self) -> QuantMethod {
        self.method
    }

    /// The per-layer weight bit plan.
    pub fn weight_plan(&self) -> &MixedPrecisionPlan {
        &self.weight_plan
    }

    /// Embedding bit width, if embeddings are quantized.
    pub fn embedding_bits(&self) -> Option<u8> {
        self.embedding_bits
    }

    fn layer_config(&self, bits: u8) -> Result<QuantConfig, QuantError> {
        let config = QuantConfig::new(self.method, bits)?
            .with_outlier_threshold(self.outlier_threshold)?
            .with_max_iterations(self.max_iterations)?;
        Ok(if self.detect_outliers { config } else { config.without_outliers() })
    }
}

/// Result of quantizing a model.
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    /// The decoded FP32 model (identical architecture; quantized layers
    /// hold their representative values, outliers restored exactly).
    pub model: TransformerModel,
    /// Exact per-layer compression accounting.
    pub report: CompressionReport,
    /// The serializable compressed payload (see
    /// [`gobo_quant::container`]); `archive.to_bytes()` is the stream a
    /// deployment would ship off-chip.
    pub archive: ModelArchive,
}

/// Quantizes every selected layer of `model`, returning the decoded
/// model and the compression report. Layers are processed in parallel.
///
/// # Errors
///
/// Propagates per-layer quantization failures and shape mismatches.
pub fn quantize_model(
    model: &TransformerModel,
    options: &QuantizeOptions,
) -> Result<QuantizedModel, GoboError> {
    let mut targets: Vec<(String, u8, usize)> = Vec::new();
    if options.quantize_weights {
        for spec in model.fc_layers() {
            let bits = options.weight_plan.bits_for(&spec.name);
            targets.push((spec.name.clone(), bits, spec.params()));
        }
    }
    if let Some(bits) = options.embedding_bits {
        for spec in model.embedding_tables() {
            targets.push((spec.name.clone(), bits, spec.params()));
        }
    }

    // Quantize layers on the bounded global pool, biggest layers
    // first: each worker reads the source tensor and produces
    // (name, decoded weights, compressed layer, wall time).
    let _model_span =
        gobo_obs::span!("gobo.quantize_model", layers = targets.len(), method = options.method);
    type LayerResult = Result<(String, Tensor, QuantizedLayer, u64), GoboError>;
    let results: Vec<LayerResult> = crate::par::par_map_largest_first(
        &targets,
        |(_, _, params)| *params,
        |(name, bits, _)| -> LayerResult {
            let _span = gobo_obs::span!("gobo.quantize_layer", layer = name, bits = bits);
            let started = std::time::Instant::now();
            let tensor = model.weight(name)?;
            let config = options.layer_config(*bits)?;
            let layer = QuantizedLayer::encode(tensor.as_slice(), &config)?;
            let decoded =
                Tensor::from_vec(layer.decode(), tensor.dims()).map_err(ModelError::from)?;
            Ok((name.clone(), decoded, layer, started.elapsed().as_micros() as u64))
        },
    );

    let mut out = model.clone();
    let mut report = CompressionReport::new();
    let mut archive = ModelArchive::new();
    for result in results {
        let (name, decoded, layer, wall_us) = result?;
        out.set_weight(&name, decoded)?;
        report.push(LayerReport::from_layer(name.clone(), &layer).with_wall_us(wall_us));
        archive.push(name, layer)?;
    }
    Ok(QuantizedModel { model: out, report, archive })
}

/// Applies an arbitrary per-layer weight transform (e.g. the
/// Q8BERT/Q-BERT-style reference quantizers) to every FC layer and —
/// when `include_embeddings` — every embedding table, returning the
/// transformed model.
///
/// The transform receives the layer name and its weights and returns
/// the replacement weights (same length).
///
/// # Errors
///
/// Propagates transform failures and shape mismatches.
pub fn transform_weights<F>(
    model: &TransformerModel,
    include_embeddings: bool,
    mut transform: F,
) -> Result<TransformerModel, GoboError>
where
    F: FnMut(&str, &[f32]) -> Result<Vec<f32>, GoboError>,
{
    let mut out = model.clone();
    let mut names: Vec<String> = model.fc_layers().into_iter().map(|s| s.name).collect();
    if include_embeddings {
        names.extend(model.embedding_tables().into_iter().map(|s| s.name));
    }
    for name in names {
        let tensor = model.weight(&name)?;
        let new = transform(&name, tensor.as_slice())?;
        let new = Tensor::from_vec(new, tensor.dims()).map_err(ModelError::from)?;
        out.set_weight(&name, new)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gobo_model::config::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> TransformerModel {
        let config = ModelConfig::tiny("Tiny", 2, 32, 4, 64, 16).unwrap();
        TransformerModel::new(config, &mut StdRng::seed_from_u64(7)).unwrap()
    }

    #[test]
    fn quantizes_all_fc_layers() {
        let model = tiny_model();
        let outcome = quantize_model(&model, &QuantizeOptions::gobo(3).unwrap()).unwrap();
        assert_eq!(outcome.report.layers.len(), model.fc_layers().len());
        assert!(outcome.report.compression_ratio() > 5.0);
        // Weights actually changed (quantization is not a no-op).
        let before = model.weight("encoder.0.intermediate").unwrap();
        let after = outcome.model.weight("encoder.0.intermediate").unwrap();
        assert_ne!(before, after);
        // Architecture is unchanged and the model still runs.
        let out = outcome.model.encode(&[1, 2, 3, 4], &[]).unwrap();
        assert!(out.hidden.all_finite());
    }

    #[test]
    fn embedding_bits_add_tables_to_report() {
        let model = tiny_model();
        let options = QuantizeOptions::gobo(3).unwrap().with_embedding_bits(4).unwrap();
        let outcome = quantize_model(&model, &options).unwrap();
        let names: Vec<&str> = outcome.report.layers.iter().map(|l| l.name.as_str()).collect();
        assert!(names.contains(&"embeddings.word"));
        assert!(names.contains(&"pooler"));
        // Embedding rows use 4 bits even though weights use 3.
        let word = outcome.report.layers.iter().find(|l| l.name == "embeddings.word").unwrap();
        assert_eq!(word.bits, 4);
    }

    #[test]
    fn embeddings_only_skips_weights() {
        let model = tiny_model();
        let options =
            QuantizeOptions::gobo(3).unwrap().with_embedding_bits(3).unwrap().embeddings_only();
        let outcome = quantize_model(&model, &options).unwrap();
        assert_eq!(outcome.report.layers.len(), model.embedding_tables().len());
        // FC weights untouched.
        assert_eq!(model.weight("pooler").unwrap(), outcome.model.weight("pooler").unwrap());
    }

    #[test]
    fn mixed_plan_applies_per_layer_bits() {
        let model = tiny_model();
        let plan = gobo_quant::mixed::MixedPrecisionPlan::roberta_sensitive(3, 4, 1).unwrap();
        let options = QuantizeOptions::gobo(3).unwrap().with_weight_plan(plan);
        let outcome = quantize_model(&model, &options).unwrap();
        let bits_of = |name: &str| {
            outcome.report.layers.iter().find(|l| l.name == name).map(|l| l.bits).unwrap()
        };
        assert_eq!(bits_of("encoder.0.attention.value"), 4);
        assert_eq!(bits_of("encoder.0.intermediate"), 4);
        assert_eq!(bits_of("encoder.0.attention.query"), 3);
        assert_eq!(bits_of("encoder.1.attention.value"), 3);
    }

    #[test]
    fn methods_differ_in_outcome() {
        let model = tiny_model();
        let gobo = quantize_model(&model, &QuantizeOptions::gobo(3).unwrap()).unwrap();
        let linear =
            quantize_model(&model, &QuantizeOptions::with_method(QuantMethod::Linear, 3).unwrap())
                .unwrap();
        assert_ne!(
            gobo.model.weight("encoder.0.output").unwrap(),
            linear.model.weight("encoder.0.output").unwrap()
        );
    }

    #[test]
    fn outlier_fraction_reported_small() {
        let model = tiny_model();
        let outcome = quantize_model(&model, &QuantizeOptions::gobo(3).unwrap()).unwrap();
        // Xavier-uniform weights have thin tails, so the fraction is
        // small but the accounting must be consistent.
        let frac = outcome.report.outlier_fraction();
        assert!((0.0..0.2).contains(&frac), "outlier fraction {frac}");
        assert_eq!(
            outcome.report.total_weights(),
            model.fc_layers().iter().map(|s| s.params()).sum::<usize>()
        );
    }

    #[test]
    fn transform_weights_applies_everywhere() {
        let model = tiny_model();
        let negated =
            transform_weights(&model, true, |_name, w| Ok(w.iter().map(|v| -v).collect())).unwrap();
        for spec in model.fc_layers().iter().chain(&model.embedding_tables()) {
            let a = model.weight(&spec.name).unwrap();
            let b = negated.weight(&spec.name).unwrap();
            assert_eq!(a.scale(-1.0), *b, "{}", spec.name);
        }
        // Without embeddings, embedding tables stay untouched.
        let fc_only = transform_weights(&model, false, |_n, w| Ok(vec![0.0; w.len()])).unwrap();
        assert_eq!(
            model.weight("embeddings.word").unwrap(),
            fc_only.weight("embeddings.word").unwrap()
        );
        assert_eq!(fc_only.weight("pooler").unwrap().sum(), 0.0);
    }

    #[test]
    fn per_layer_wall_time_is_recorded() {
        let model = tiny_model();
        let outcome = quantize_model(&model, &QuantizeOptions::gobo(3).unwrap()).unwrap();
        // Every layer carries its telemetry; at least the big FFN layers
        // take measurable wall time even on a fast machine.
        assert!(outcome.report.total_wall_us() > 0);
        for layer in &outcome.report.layers {
            assert!(layer.iterations >= 1, "{}", layer.name);
            assert_eq!(
                layer.bin_occupancy.iter().sum::<u64>() as usize,
                layer.weights - layer.outliers
            );
        }
    }

    /// Tracing enabled: quantizing a model must record one
    /// `gobo.quantize_layer` span per FC layer, nested inside the
    /// pool's `gobo.par.task` spans on the worker threads. (Other tests
    /// may quantize concurrently while the flag is up, so assertions
    /// are set-inclusion, never exact counts.)
    #[test]
    fn tracing_records_one_span_per_layer() {
        let model = tiny_model();
        gobo_obs::trace::enable();
        let outcome = quantize_model(&model, &QuantizeOptions::gobo(3).unwrap());
        gobo_obs::trace::disable();
        outcome.unwrap();
        let events = gobo_obs::trace::take_events();
        let layer_spans: Vec<&gobo_obs::trace::SpanEvent> =
            events.iter().filter(|e| e.name == "gobo.quantize_layer").collect();
        for spec in model.fc_layers() {
            let needle = format!("layer={}", spec.name);
            assert!(
                layer_spans.iter().any(|e| e.detail.starts_with(&needle)),
                "no span for {}",
                spec.name
            );
        }
        // Layer spans nest under the pool's task spans.
        assert!(events.iter().any(|e| e.name == "gobo.par.task"));
        assert!(layer_spans.iter().all(|e| e.depth >= 1), "layer spans must be nested");
        assert!(events.iter().any(|e| e.name == "gobo.quantize_model"));
    }

    #[test]
    fn invalid_bits_rejected() {
        assert!(QuantizeOptions::gobo(0).is_err());
        assert!(QuantizeOptions::gobo(9).is_err());
        assert!(QuantizeOptions::gobo(3).unwrap().with_embedding_bits(0).is_err());
    }
}
