//! Bounded-pool parallel mapping for per-layer work.
//!
//! Model quantization used to spawn one OS thread per layer, which on
//! BERT-scale models means 70+ threads fighting over a handful of
//! cores. Everything here runs on rayon's global pool instead, so the
//! thread count is bounded by the pool size regardless of layer count.

/// Maps `work` over `items` on the global rayon pool and returns the
/// results **in input order**.
///
/// Items are scheduled largest-first (by `size_of`): with a bounded
/// pool, starting the long-pole layers first minimizes the tail where
/// one worker grinds through a big FFN layer while the rest sit idle.
pub(crate) fn par_map_largest_first<T, R, F>(
    items: &[T],
    size_of: impl Fn(&T) -> usize,
    work: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(size_of(&items[i])));

    // The map span lives on the calling thread and covers scheduling,
    // the pool's execution, and the caller's help-first waiting; each
    // task records its own span on whichever worker thread ran it, so a
    // trace shows the work-stealing schedule laid out per thread.
    let _map_span = gobo_obs::span!("gobo.par.map", tasks = items.len());
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    rayon::scope(|s| {
        let mut refs: Vec<Option<&mut Option<R>>> = slots.iter_mut().map(Some).collect();
        for &i in &order {
            let slot = refs[i].take().expect("each slot claimed once");
            let item = &items[i];
            let work = &work;
            s.spawn(move |_| {
                let _task_span = gobo_obs::span!("gobo.par.task", index = i);
                *slot = Some(work(item));
            });
        }
    });
    slots.into_iter().map(|r| r.expect("worker filled slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..50).collect();
        let out = par_map_largest_first(&items, |&n| n, |&n| n * 3);
        assert_eq!(out, items.iter().map(|n| n * 3).collect::<Vec<_>>());
    }

    #[test]
    fn runs_on_bounded_pool() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..200).collect();
        par_map_largest_first(
            &items,
            |_| 1,
            |_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            },
        );
        // Pool workers plus the helping caller thread.
        assert!(seen.lock().unwrap().len() <= rayon::current_num_threads() + 1);
    }
}
