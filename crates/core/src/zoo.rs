//! The model zoo: deterministic tiny stand-ins for the paper's five
//! fine-tuned checkpoints.
//!
//! Each published model maps to a tiny trainable geometry with the same
//! topology and a relative size ordering that mirrors the real family
//! (Large > Base > Distil). Training is deterministic per
//! (model, task, scale), so every experiment sees the same baseline.

use gobo_model::config::ModelConfig;
use gobo_model::TransformerModel;
use gobo_tasks::data::{nli, span, sts, Example, TaskSpec};
use gobo_tasks::eval::{evaluate, TaskScore};
use gobo_tasks::heads::HeadWeights;
use gobo_tasks::trainer::{train, TrainerOptions};
use gobo_tasks::TaskKind;
use gobo_train::layers::EncoderDims;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::GoboError;
use crate::pipeline::{quantize_model, QuantizeOptions};

/// The five published models the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperModel {
    /// BERT-Base (12 layers, hidden 768).
    BertBase,
    /// BERT-Large (24 layers, hidden 1024).
    BertLarge,
    /// DistilBERT (6 layers distilled from BERT-Base).
    DistilBert,
    /// RoBERTa (base).
    Roberta,
    /// RoBERTa-Large.
    RobertaLarge,
}

impl PaperModel {
    /// All five models, in the paper's order.
    pub fn all() -> [PaperModel; 5] {
        [
            PaperModel::BertBase,
            PaperModel::BertLarge,
            PaperModel::DistilBert,
            PaperModel::Roberta,
            PaperModel::RobertaLarge,
        ]
    }

    /// The published name.
    pub fn name(&self) -> &'static str {
        match self {
            PaperModel::BertBase => "BERT-Base",
            PaperModel::BertLarge => "BERT-Large",
            PaperModel::DistilBert => "DistilBERT",
            PaperModel::Roberta => "RoBERTa",
            PaperModel::RobertaLarge => "RoBERTa-Large",
        }
    }

    /// Full-scale geometry (Table I), used for the analytic size and
    /// outlier experiments.
    pub fn config(&self) -> ModelConfig {
        match self {
            PaperModel::BertBase => ModelConfig::bert_base(),
            PaperModel::BertLarge => ModelConfig::bert_large(),
            PaperModel::DistilBert => ModelConfig::distilbert(),
            PaperModel::Roberta => ModelConfig::roberta_base(),
            PaperModel::RobertaLarge => ModelConfig::roberta_large(),
        }
    }

    /// The tiny trainable stand-in geometry (vocabulary matches the
    /// shared [`TaskSpec`]).
    pub fn tiny_dims(&self) -> EncoderDims {
        let (layers, hidden) = match self {
            PaperModel::BertBase => (4, 40),
            PaperModel::BertLarge => (6, 48),
            PaperModel::DistilBert => (2, 40),
            PaperModel::Roberta => (4, 40),
            PaperModel::RobertaLarge => (6, 48),
        };
        EncoderDims {
            layers,
            hidden,
            heads: 4,
            intermediate: hidden * 4,
            vocab: task_spec().vocab,
            max_position: 16,
            type_vocab: 2,
        }
    }

    /// Distinct training seed per model so RoBERTa is a different
    /// trained instance than BERT-Base despite equal geometry.
    fn seed(&self) -> u64 {
        match self {
            PaperModel::BertBase => 11,
            PaperModel::BertLarge => 22,
            PaperModel::DistilBert => 33,
            PaperModel::Roberta => 44,
            PaperModel::RobertaLarge => 55,
        }
    }
}

/// The shared synthetic-task specification: 62-token vocabulary, 6
/// topic clusters, 5 tokens per sentence side, and 10% token noise.
///
/// The noise keeps the stand-in models' margins realistic (high-80s to
/// low-90s baselines, like the paper's fine-tuned checkpoints) instead
/// of saturating at 100%, which would hide quantization sensitivity.
pub fn task_spec() -> TaskSpec {
    TaskSpec::small(62).with_noise(0.10)
}

/// How big the zoo's training runs are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZooScale {
    /// The reference setting used for reported numbers: 900 train /
    /// 300 test examples; 10 epochs at lr 3e-4 for shallow stand-ins,
    /// 15 at 2e-4 for 6-layer ones. Requires release-mode patience.
    Full,
    /// A smoke setting for debug-mode tests (works, but underfits).
    Smoke,
}

impl ZooScale {
    fn train_examples(&self) -> usize {
        match self {
            ZooScale::Full => 900,
            ZooScale::Smoke => 90,
        }
    }

    fn test_examples(&self) -> usize {
        match self {
            ZooScale::Full => 300,
            ZooScale::Smoke => 45,
        }
    }

    /// Deep stacks train with a gentler learning rate and more passes
    /// (single-label NLI gradients thin out across 6 layers).
    fn schedule(&self, layers: usize) -> (usize, f32) {
        match (self, layers >= 6) {
            (ZooScale::Full, false) => (10, 3e-4),
            (ZooScale::Full, true) => (15, 2e-4),
            (ZooScale::Smoke, false) => (2, 3e-4),
            (ZooScale::Smoke, true) => (2, 2e-4),
        }
    }
}

/// A trained tiny stand-in: the inference model, its task head, its
/// held-out data, and its FP32 baseline score.
#[derive(Debug, Clone)]
pub struct ZooModel {
    /// Which published model this stands in for.
    pub paper: PaperModel,
    /// The task it was fine-tuned on.
    pub kind: TaskKind,
    /// The trained FP32 inference model.
    pub model: TransformerModel,
    /// The FP32 task head.
    pub head: HeadWeights,
    /// Held-out evaluation data.
    pub test_data: Vec<Example>,
    /// FP32 baseline score on `test_data`.
    pub baseline: TaskScore,
}

impl ZooModel {
    /// Quantizes this model with `options` and re-evaluates on the
    /// held-out data, returning the quantized score (compare with
    /// [`ZooModel::baseline`] for the paper's "Error" column) and the
    /// compression report.
    ///
    /// # Errors
    ///
    /// Propagates quantization and evaluation failures.
    pub fn quantized_score(
        &self,
        options: &QuantizeOptions,
    ) -> Result<(TaskScore, gobo_quant::CompressionReport), GoboError> {
        let outcome = quantize_model(&self.model, options)?;
        let score = evaluate(&outcome.model, &self.head, &self.test_data)?;
        Ok((score, outcome.report))
    }
}

/// Trains (deterministically) the tiny stand-in for `paper` on `kind`.
///
/// # Errors
///
/// Propagates dataset-generation and training failures.
pub fn train_zoo_model(
    paper: PaperModel,
    kind: TaskKind,
    scale: ZooScale,
) -> Result<ZooModel, GoboError> {
    let spec = task_spec();
    let dims = paper.tiny_dims();
    let seed = paper.seed();
    let mut rng = StdRng::seed_from_u64(seed);
    let n_train = scale.train_examples();
    let n_test = scale.test_examples();
    let (train_data, test_data) = match kind {
        TaskKind::Nli => (nli(&spec, n_train, &mut rng)?, nli(&spec, n_test, &mut rng)?),
        TaskKind::Sts => (sts(&spec, n_train, &mut rng)?, sts(&spec, n_test, &mut rng)?),
        TaskKind::Span => (span(&spec, n_train, &mut rng)?, span(&spec, n_test, &mut rng)?),
    };
    let (epochs, learning_rate) = scale.schedule(dims.layers);
    let trained = train(kind, &dims, &train_data, &TrainerOptions { epochs, learning_rate, seed })?;
    let model = gobo_tasks::export::to_transformer_model(paper.name(), &dims, &trained.params)?;
    let head = HeadWeights::extract(kind, &trained.params)?;
    let baseline = evaluate(&model, &head, &test_data)?;
    Ok(ZooModel { paper, kind, model, head, test_data, baseline })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_zoo_trains_and_quantizes() {
        let zoo = train_zoo_model(PaperModel::DistilBert, TaskKind::Nli, ZooScale::Smoke).unwrap();
        assert_eq!(zoo.paper.name(), "DistilBERT");
        assert!(zoo.baseline.value.is_finite());
        let (score, report) = zoo.quantized_score(&QuantizeOptions::gobo(4).unwrap()).unwrap();
        assert!(score.value.is_finite());
        assert!(report.compression_ratio() > 4.0);
    }

    #[test]
    fn zoo_training_is_deterministic() {
        let a = train_zoo_model(PaperModel::DistilBert, TaskKind::Nli, ZooScale::Smoke).unwrap();
        let b = train_zoo_model(PaperModel::DistilBert, TaskKind::Nli, ZooScale::Smoke).unwrap();
        assert_eq!(a.model, b.model);
        assert_eq!(a.baseline, b.baseline);
    }

    #[test]
    fn tiny_dims_are_ordered_like_the_family() {
        let size = |p: PaperModel| {
            let d = p.tiny_dims();
            d.layers * d.hidden * d.hidden
        };
        assert!(size(PaperModel::BertLarge) > size(PaperModel::BertBase));
        assert!(size(PaperModel::BertBase) > size(PaperModel::DistilBert));
        assert_eq!(size(PaperModel::Roberta), size(PaperModel::BertBase));
    }

    #[test]
    fn paper_model_metadata() {
        assert_eq!(PaperModel::all().len(), 5);
        for p in PaperModel::all() {
            assert!(!p.name().is_empty());
            assert!(p.config().validate().is_ok());
            assert!(p.tiny_dims().validate().is_ok());
        }
    }
}
