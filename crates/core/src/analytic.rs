//! Full-scale analytic experiments on synthetic weights.
//!
//! Everything here operates layer-by-layer on synthetic weights that
//! match the published models' exact geometry (Table I) and observed
//! weight distribution (Figures 1b/1c), so BERT-Large's 1.12 GiB of
//! FP32 never needs to be resident at once. These functions back the
//! compression-ratio columns of Tables III–VII and Figures 1–3.

use gobo_model::config::ModelConfig;
use gobo_model::spec::{enumerate_embedding_tables, enumerate_fc_layers};
use gobo_model::synth::{layer_distribution, synthesize_embedding, synthesize_layer};
use gobo_quant::mixed::MixedPrecisionPlan;
use gobo_quant::{
    CompressionReport, ConvergenceTrace, LayerReport, OutlierSplit, QuantConfig, QuantMethod,
    QuantizedLayer,
};
use gobo_stats::Histogram;

use crate::error::GoboError;

/// Shrinks a full-scale geometry by an integer divisor for debug-mode
/// smoke runs (divisor 1 = the paper's exact geometry).
///
/// # Errors
///
/// Returns [`GoboError::InvalidExperiment`] when the divisor is zero or
/// collapses a dimension.
pub fn scaled_config(config: &ModelConfig, divisor: usize) -> Result<ModelConfig, GoboError> {
    if divisor == 0 {
        return Err(GoboError::InvalidExperiment { what: "zero scale divisor" });
    }
    if divisor == 1 {
        return Ok(config.clone());
    }
    let mut scaled = config.clone();
    scaled.hidden /= divisor;
    scaled.intermediate /= divisor;
    scaled.vocab /= divisor;
    scaled.heads = (scaled.heads / divisor).max(1);
    if scaled.hidden == 0 || scaled.intermediate == 0 || scaled.vocab < 16 {
        return Err(GoboError::InvalidExperiment { what: "scale divisor too large" });
    }
    scaled.name = format!("{} (1/{divisor})", config.name);
    Ok(scaled)
}

/// One point of Figure 3: the outlier fraction of one FC layer.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierPoint {
    /// Position in the FC-layer enumeration (x axis of Figure 3).
    pub layer_index: usize,
    /// Layer name.
    pub name: String,
    /// Fraction of the layer's weights classified as outliers.
    pub fraction: f64,
}

/// Computes the per-FC-layer outlier fraction across a model
/// (Figure 3), streaming one layer at a time.
///
/// # Errors
///
/// Propagates quantization failures.
pub fn outlier_profile(
    config: &ModelConfig,
    log_pdf_threshold: f64,
    seed: u64,
) -> Result<Vec<OutlierPoint>, GoboError> {
    let specs = enumerate_fc_layers(config);
    let count = specs.len();
    let mut out = Vec::with_capacity(count);
    for (i, spec) in specs.iter().enumerate() {
        let dist = layer_distribution(config, i, count);
        let weights = synthesize_layer(spec, &dist, seed);
        let split = OutlierSplit::detect(&weights, log_pdf_threshold)?;
        out.push(OutlierPoint {
            layer_index: i,
            name: spec.name.clone(),
            fraction: split.outlier_fraction(),
        });
    }
    Ok(out)
}

/// Quantizes every FC layer of a synthetic full-scale model and
/// returns the exact compression report (the "Compression Ratio"
/// columns of Tables III–VI). Layers run in parallel.
///
/// # Errors
///
/// Propagates quantization failures.
pub fn weight_compression(
    config: &ModelConfig,
    plan: &MixedPrecisionPlan,
    method: QuantMethod,
    seed: u64,
) -> Result<CompressionReport, GoboError> {
    let specs = enumerate_fc_layers(config);
    let count = specs.len();
    let indexed: Vec<(usize, &gobo_model::spec::FcLayerSpec)> = specs.iter().enumerate().collect();
    let results: Vec<Result<LayerReport, GoboError>> = crate::par::par_map_largest_first(
        &indexed,
        |(_, spec)| spec.params(),
        |&(i, spec)| -> Result<LayerReport, GoboError> {
            let dist = layer_distribution(config, i, count);
            let weights = synthesize_layer(spec, &dist, seed);
            let quant_config = QuantConfig::new(method, plan.bits_for(&spec.name))?;
            let layer = QuantizedLayer::encode(&weights, &quant_config)?;
            Ok(LayerReport::from_layer(spec.name.clone(), &layer))
        },
    );
    results.into_iter().collect::<Result<CompressionReport, GoboError>>()
}

/// Quantizes a synthetic word-embedding table (Table VII / Figure 4's
/// size side).
///
/// # Errors
///
/// Propagates quantization failures.
pub fn embedding_compression(
    config: &ModelConfig,
    bits: u8,
    seed: u64,
) -> Result<CompressionReport, GoboError> {
    let mut report = CompressionReport::new();
    // Table VII counts the word table; position/type tables are
    // negligible but included for completeness.
    for spec in enumerate_embedding_tables(config) {
        let weights = synthesize_embedding(&spec, seed);
        let quant_config = QuantConfig::new(QuantMethod::Gobo, bits)?;
        let layer = QuantizedLayer::encode(&weights, &quant_config)?;
        report.push(LayerReport::from_layer(spec.name.clone(), &layer));
    }
    Ok(report)
}

/// Convergence traces of GOBO vs K-Means on one representative layer
/// (Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceComparison {
    /// The layer used.
    pub layer_name: String,
    /// GOBO's per-iteration L1/L2 norms.
    pub gobo: ConvergenceTrace,
    /// K-Means' per-iteration L1/L2 norms (run to assignment
    /// convergence).
    pub kmeans: ConvergenceTrace,
}

impl ConvergenceComparison {
    /// The headline speedup: K-Means iterations over GOBO iterations.
    pub fn iteration_speedup(&self) -> f64 {
        self.kmeans.iterations() as f64 / self.gobo.iterations() as f64
    }
}

/// Runs GOBO and K-Means (same outlier split, same init) on a
/// representative mid-stack layer and records both traces.
///
/// # Errors
///
/// Propagates quantization failures.
pub fn convergence_comparison(
    config: &ModelConfig,
    bits: u8,
    seed: u64,
) -> Result<ConvergenceComparison, GoboError> {
    let specs = enumerate_fc_layers(config);
    let spec = &specs[specs.len() / 2];
    let dist = layer_distribution(config, specs.len() / 2, specs.len());
    let weights = synthesize_layer(spec, &dist, seed);
    let split = OutlierSplit::detect(&weights, gobo_quant::DEFAULT_LOG_PDF_THRESHOLD)?;
    let gobo_layer =
        QuantizedLayer::encode_split(&split, &QuantConfig::new(QuantMethod::Gobo, bits)?)?;
    let kmeans_layer =
        QuantizedLayer::encode_split(&split, &QuantConfig::new(QuantMethod::KMeans, bits)?)?;
    Ok(ConvergenceComparison {
        layer_name: spec.name.clone(),
        gobo: gobo_layer.trace().clone(),
        kmeans: kmeans_layer.trace().clone(),
    })
}

/// Weight histogram of one layer (Figure 1b).
///
/// # Errors
///
/// Propagates histogram-construction failures.
pub fn weight_histogram(
    config: &ModelConfig,
    layer_index: usize,
    bins: usize,
    seed: u64,
) -> Result<Histogram, GoboError> {
    let specs = enumerate_fc_layers(config);
    let idx = layer_index.min(specs.len() - 1);
    let dist = layer_distribution(config, idx, specs.len());
    let weights = synthesize_layer(&specs[idx], &dist, seed);
    Histogram::from_sample(&weights, bins)
        .map_err(|e| GoboError::Quant(gobo_quant::QuantError::Stats(e)))
}

/// Figure 1c data: `(value, is_outlier)` for a downsampled slice of one
/// layer's weights.
///
/// # Errors
///
/// Propagates quantization failures.
pub fn layer_scatter(
    config: &ModelConfig,
    layer_index: usize,
    max_points: usize,
    seed: u64,
) -> Result<Vec<(f32, bool)>, GoboError> {
    let specs = enumerate_fc_layers(config);
    let idx = layer_index.min(specs.len() - 1);
    let dist = layer_distribution(config, idx, specs.len());
    let weights = synthesize_layer(&specs[idx], &dist, seed);
    let split = OutlierSplit::detect(&weights, gobo_quant::DEFAULT_LOG_PDF_THRESHOLD)?;
    let outliers: std::collections::HashSet<u32> =
        split.outlier_positions().iter().copied().collect();
    let stride = (weights.len() / max_points.max(1)).max(1);
    Ok(weights
        .iter()
        .enumerate()
        .step_by(stride)
        .map(|(i, &w)| (w, outliers.contains(&(i as u32))))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ModelConfig {
        scaled_config(&ModelConfig::bert_base(), 16).unwrap()
    }

    #[test]
    fn scaling_validates() {
        assert!(scaled_config(&ModelConfig::bert_base(), 0).is_err());
        assert!(scaled_config(&ModelConfig::bert_base(), 4000).is_err());
        let s = small();
        assert_eq!(s.hidden, 48);
        assert_eq!(s.encoder_layers, 12); // depth preserved
    }

    #[test]
    fn outlier_profile_matches_figure3_shape() {
        let profile = outlier_profile(&small(), -4.0, 7).unwrap();
        assert_eq!(profile.len(), 73);
        // All but the last layers below ~1.5%; whole-model average small.
        let avg: f64 = profile.iter().map(|p| p.fraction).sum::<f64>() / profile.len() as f64;
        assert!(avg < 0.01, "average outlier fraction {avg}");
        for p in &profile[..68] {
            assert!(p.fraction < 0.015, "{}: {}", p.name, p.fraction);
        }
        // The final layers carry more outliers than the stack average.
        let last = profile.last().unwrap().fraction;
        assert!(last > avg, "last layer {last} vs avg {avg}");
    }

    #[test]
    fn weight_compression_near_ideal() {
        let plan = MixedPrecisionPlan::uniform(3).unwrap();
        let report = weight_compression(&small(), &plan, QuantMethod::Gobo, 7).unwrap();
        assert_eq!(report.layers.len(), 73);
        let ratio = report.compression_ratio();
        assert!(ratio > 8.5 && ratio < 10.67, "ratio {ratio}");
    }

    #[test]
    fn mixed_plan_changes_ratio() {
        let uniform = weight_compression(
            &small(),
            &MixedPrecisionPlan::uniform(3).unwrap(),
            QuantMethod::Gobo,
            7,
        )
        .unwrap();
        let mixed = weight_compression(
            &small(),
            &MixedPrecisionPlan::roberta_sensitive(3, 4, 6).unwrap(),
            QuantMethod::Gobo,
            7,
        )
        .unwrap();
        assert!(mixed.compression_ratio() < uniform.compression_ratio());
        assert!(mixed.compression_ratio() > uniform.compression_ratio() * 0.9);
    }

    #[test]
    fn embedding_compression_near_ideal() {
        let report = embedding_compression(&small(), 3, 7).unwrap();
        let ratio = report.compression_ratio();
        assert!(ratio > 9.0 && ratio < 10.67, "ratio {ratio}");
        let four_bit = embedding_compression(&small(), 4, 7).unwrap();
        assert!(four_bit.compression_ratio() < ratio);
    }

    #[test]
    fn convergence_comparison_shows_speedup() {
        let cmp = convergence_comparison(&small(), 3, 7).unwrap();
        assert!(cmp.iteration_speedup() > 1.5, "speedup {}", cmp.iteration_speedup());
        // GOBO's final L1 is no worse than K-Means' final L1 on this
        // realistic layer (the paper's accuracy-side argument).
        let g_l1 = cmp.gobo.l1[cmp.gobo.selected_iteration];
        let k_l1 = *cmp.kmeans.l1.last().unwrap();
        assert!(g_l1 <= k_l1 * 1.001, "gobo {g_l1} vs kmeans {k_l1}");
    }

    #[test]
    fn histogram_is_bell_shaped() {
        let h = weight_histogram(&small(), 5, 31, 7).unwrap();
        let counts = h.counts();
        let mid = counts.len() / 2;
        // Center bins dominate the edges by a wide margin.
        assert!(counts[mid] > 10 * counts[1].max(1));
        assert!(counts[mid] > 10 * counts[counts.len() - 2].max(1));
    }

    #[test]
    fn scatter_marks_fringe_values_as_outliers() {
        let pts = layer_scatter(&small(), 5, 2000, 7).unwrap();
        assert!(!pts.is_empty());
        let outlier_mags: Vec<f32> = pts.iter().filter(|(_, o)| *o).map(|(w, _)| w.abs()).collect();
        let bulk_max = pts.iter().filter(|(_, o)| !*o).map(|(w, _)| w.abs()).fold(0.0f32, f32::max);
        for m in outlier_mags {
            assert!(m > bulk_max * 0.8, "outlier {m} inside bulk {bulk_max}");
        }
    }
}
