//! No-op derive macros backing the vendored `serde` stand-in.
//!
//! The real traits are blanket-implemented in the `serde` stand-in, so
//! the derives only need to accept the attribute syntax and emit
//! nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing; the blanket impl in `serde` covers the trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes)
/// and expands to nothing; the blanket impl in `serde` covers the
/// trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
