//! Offline stand-in for `rayon`: a bounded global worker pool with
//! scoped task spawning.
//!
//! The API mirrors the subset of rayon this workspace uses —
//! [`scope`]/[`Scope::spawn`], [`join`], and [`current_num_threads`] —
//! with the same guarantees:
//!
//! - the pool is **global and bounded**: `RAYON_NUM_THREADS` or the
//!   machine's available parallelism, created once, reused by every
//!   call site. Spawning 10 000 tasks never creates 10 000 threads.
//! - [`scope`] blocks until every task spawned inside it has finished,
//!   so tasks may borrow from the caller's stack.
//! - the thread calling [`scope`] *helps*: while waiting it pops and
//!   runs queued tasks instead of sleeping, so nested scopes cannot
//!   deadlock and a single-core machine still makes progress.
//!
//! Scheduling is a shared FIFO injector rather than per-worker
//! work-stealing deques; for the coarse tasks this workspace spawns
//! (whole layers, multi-thousand-element chunks) the difference is
//! noise.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send>;

struct PoolState {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

struct Pool {
    state: Arc<PoolState>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = configured_threads();
        let state =
            Arc::new(PoolState { queue: Mutex::new(VecDeque::new()), available: Condvar::new() });
        for i in 0..workers {
            let st = Arc::clone(&state);
            thread::Builder::new()
                .name(format!("rayon-worker-{i}"))
                .spawn(move || worker_loop(&st))
                .expect("failed to spawn pool worker");
        }
        Pool { state, workers }
    })
}

fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn worker_loop(state: &PoolState) {
    loop {
        let job = {
            let mut q = state.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = state.available.wait(q).expect("pool queue poisoned");
            }
        };
        job();
    }
}

fn push_job(job: Job) {
    let p = pool();
    p.state.queue.lock().expect("pool queue poisoned").push_back(job);
    p.state.available.notify_one();
}

fn try_pop_job() -> Option<Job> {
    pool().state.queue.lock().expect("pool queue poisoned").pop_front()
}

/// Number of worker threads in the global pool.
pub fn current_num_threads() -> usize {
    pool().workers
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().expect("scope panic slot poisoned");
        slot.get_or_insert(payload);
    }
}

/// A scope in which tasks borrowing the caller's stack may be spawned.
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns a task on the global pool. The task may borrow anything
    /// that outlives the enclosing [`scope`] call.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let state = Arc::clone(&self.state);
        state.pending.fetch_add(1, Ordering::SeqCst);
        let wrapper = move || {
            let inner = Scope::<'scope> { state: Arc::clone(&state), _marker: PhantomData };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(&inner))) {
                inner.state.record_panic(payload);
            }
            state.pending.fetch_sub(1, Ordering::SeqCst);
        };
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(wrapper);
        // SAFETY: `scope` does not return until `pending` reaches zero,
        // so the job (and everything it borrows, all outliving 'scope)
        // stays valid for the job's whole execution. The transmute only
        // erases the lifetime; layout is identical.
        let job: Job = unsafe { std::mem::transmute(job) };
        push_job(job);
    }
}

/// Creates a scope, runs `f` in it, and blocks until every spawned
/// task has completed. While blocked, the calling thread executes
/// queued tasks itself ("help-first" waiting).
///
/// Panics from tasks are captured and re-raised here after all tasks
/// have drained.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let state = Arc::new(ScopeState { pending: AtomicUsize::new(0), panic: Mutex::new(None) });
    let s = Scope { state: Arc::clone(&state), _marker: PhantomData };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));

    // Drain: run queued jobs ourselves, sleep briefly only when the
    // queue is empty but tasks are still in flight on workers.
    while state.pending.load(Ordering::SeqCst) != 0 {
        if let Some(job) = try_pop_job() {
            job();
        } else {
            thread::sleep(Duration::from_micros(50));
        }
    }

    if let Some(payload) = state.panic.lock().expect("scope panic slot poisoned").take() {
        panic::resume_unwind(payload);
    }
    match result {
        Ok(r) => r,
        Err(payload) => panic::resume_unwind(payload),
    }
}

/// Runs both closures, potentially in parallel, and returns both
/// results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb: Option<RB> = None;
    let ra = {
        let rb_ref = &mut rb;
        scope(move |s| {
            s.spawn(move |_| *rb_ref = Some(oper_b()));
            oper_a()
        })
    };
    (ra, rb.expect("join task completed"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_runs_all_tasks_with_borrows() {
        let mut out = vec![0usize; 64];
        scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i * 2);
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn nested_scopes_complete() {
        let mut totals = [0u64; 8];
        scope(|s| {
            for (i, t) in totals.iter_mut().enumerate() {
                s.spawn(move |_| {
                    let mut parts = [0u64; 4];
                    scope(|inner| {
                        for (j, p) in parts.iter_mut().enumerate() {
                            inner.spawn(move |_| *p = (i * 10 + j) as u64);
                        }
                    });
                    *t = parts.iter().sum();
                });
            }
        });
        for (i, &t) in totals.iter().enumerate() {
            let expected: u64 = (0..4).map(|j| (i * 10 + j) as u64).sum();
            assert_eq!(t, expected);
        }
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn thread_count_is_bounded_and_stable() {
        let n = current_num_threads();
        assert!(n >= 1);
        assert_eq!(n, current_num_threads());
    }

    #[test]
    fn task_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
        });
        assert!(caught.is_err());
    }
}
