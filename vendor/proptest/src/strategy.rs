//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// `generate` returns `None` when the drawn value is rejected (e.g. a
/// `prop_filter` predicate failed); the runner retries with fresh
/// randomness up to a global rejection cap.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value, or `None` on rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying the predicate.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, _whence: whence }
    }

    /// Simultaneously filters and maps; `None` results are rejected.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f, _whence: whence }
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let outer = self.inner.generate(rng)?;
        (self.f)(outer).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    _whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    _whence: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// `&S` delegates, so strategies can be reused by reference.
impl<S: Strategy> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        (**self).generate(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Marker for generating any value of a primitive type; see
/// [`crate::arbitrary::any`].
pub struct Any<T> {
    pub(crate) _marker: PhantomData<T>,
}
