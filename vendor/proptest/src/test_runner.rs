//! The property-test driver: configuration, errors, and the case loop.

use crate::strategy::Strategy;
use rand::SeedableRng;

/// The RNG handed to strategies. Deterministic per test name, so runs
/// are reproducible without a persistence file.
pub type TestRng = rand::rngs::StdRng;

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is violated: fail the whole test.
    Fail(String),
    /// The input is outside the property's domain: retry with a new one.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

fn seed_for(name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs one property to completion; panics (failing the enclosing
/// `#[test]`) on the first violated case.
pub fn run_property<S, F>(config: &ProptestConfig, name: &str, strategy: S, mut property: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::seed_from_u64(seed_for(name));
    let max_rejections = 256 * config.cases as usize + 1024;
    let mut rejections = 0usize;
    let mut passed = 0u32;
    while passed < config.cases {
        let Some(value) = strategy.generate(&mut rng) else {
            rejections += 1;
            assert!(
                rejections <= max_rejections,
                "proptest '{name}': too many rejected inputs ({rejections}); \
                 strategy filters are too strict"
            );
            continue;
        };
        match property(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejections += 1;
                assert!(
                    rejections <= max_rejections,
                    "proptest '{name}': too many rejected inputs ({rejections}): {why}"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed (case {passed} of {}): {msg}", config.cases);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(seed_for("alpha"), seed_for("alpha"));
        assert_ne!(seed_for("alpha"), seed_for("beta"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.0f32..2.0, b in 1u8..=8) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=8).contains(&b));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u8..=255, 4..9)) {
            prop_assert!(v.len() >= 4 && v.len() < 9);
        }

        #[test]
        fn exact_size_vec(v in crate::collection::vec(0.0f64..1.0, 12usize)) {
            prop_assert_eq!(v.len(), 12);
        }

        #[test]
        fn map_and_filter_compose(
            n in (0u32..100).prop_map(|v| v * 2).prop_filter("even", |v| v % 2 == 0)
        ) {
            prop_assert!(n % 2 == 0);
            prop_assert!(n < 200);
        }

        #[test]
        fn flat_map_builds_dependent_sizes(
            v in (1usize..6).prop_flat_map(|n| crate::collection::vec(0u64..10, n))
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert!(n != 3);
        }
    }
}
