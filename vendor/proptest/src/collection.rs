//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = self.size.sample(rng);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}
