//! Offline stand-in for `proptest`: deterministic random property
//! testing covering the subset of the API this workspace uses.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports the test name, case
//!   number, and assertion message; cases are deterministic per test
//!   name, so failures reproduce on re-run.
//! - **No persistence.** `.proptest-regressions` files are ignored.
//! - Strategies generate values directly instead of building value
//!   trees.
//!
//! Supported surface: range strategies for the primitive integer and
//! float types, tuple strategies up to arity 6, `prop_map`,
//! `prop_flat_map`, `prop_filter`, `prop_filter_map`,
//! `collection::vec` with exact / range / inclusive-range sizes,
//! `any::<T>()` for primitives, `Just`, the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, `ProptestConfig`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, and
//! `prop_assume!`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import used by test files: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn` items whose
/// parameters use `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strategy = ($($strat,)+);
                $crate::test_runner::run_property(
                    &config,
                    stringify!($name),
                    strategy,
                    |($($arg,)+)| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case (with an optional formatted message) if the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}: {}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Rejects the current case (retried with a fresh input) if the
/// condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}
