//! `any::<T>()` support for primitive types.

use crate::strategy::{Any, Strategy};
use crate::test_runner::TestRng;
use rand::RngCore;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns a strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Uniform in [0, 1): full-domain floats are almost never what a
        // property wants, and the workspace only draws seeds this way.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
