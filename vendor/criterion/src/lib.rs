//! Offline stand-in for `criterion` covering the subset this workspace
//! uses: groups, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Methodology: each benchmark is warmed up, then timed for
//! `sample_size` samples; each sample runs enough iterations to last a
//! few milliseconds. The **median** ns/iter across samples is reported
//! on stdout and appended as a JSON line to
//! `target/criterion-medians.jsonl` (override with the
//! `CRITERION_STUB_OUT` environment variable) so downstream tooling
//! can harvest results without scraping stdout. No statistical
//! regression analysis or HTML reports.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark; only element counts are used
/// here.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }
}

/// Benchmark registry entry point; create with [`Criterion::default`].
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into(), sample_size: 20, throughput: None }
    }
}

/// A named set of benchmarks sharing sample-count and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Runs one benchmark against a fixed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Conversion into [`BenchmarkId`] so `bench_function` accepts both
/// plain strings and `BenchmarkId::new(..)`.
pub trait IntoBenchmarkId {
    /// Converts to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut sample: F,
) {
    // Warm-up and calibration: find an iteration count lasting ~5 ms,
    // so short routines are timed over many iterations.
    let mut iters = 1u64;
    let target = Duration::from_millis(5);
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        sample(&mut b);
        if b.elapsed >= target || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (target.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
        };
        iters = iters.saturating_mul(grow);
    }

    let mut per_iter_ns: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            sample(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];

    let mut line =
        format!("{id}: median {} ({iters} iters/sample, {sample_size} samples)", fmt_ns(median));
    let mut elements_per_sec = None;
    if let Some(Throughput::Elements(n)) = throughput {
        let eps = n as f64 * 1e9 / median;
        elements_per_sec = Some(eps);
        let _ = write!(line, ", {:.3} Melem/s", eps / 1e6);
    }
    println!("{line}");
    append_record(id, median, elements_per_sec);
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn append_record(id: &str, median_ns: f64, elements_per_sec: Option<f64>) {
    let path = std::env::var("CRITERION_STUB_OUT")
        .unwrap_or_else(|_| "target/criterion-medians.jsonl".to_string());
    if let Some(parent) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let eps = elements_per_sec.map(|e| format!(",\"elements_per_sec\":{e:.1}")).unwrap_or_default();
    let record = format!("{{\"id\":\"{id}\",\"median_ns\":{median_ns:.1}{eps}}}\n");
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = f.write_all(record.as_bytes());
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_and_median_are_sane() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("selftest");
        g.sample_size(5);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &k| {
            b.iter(|| (0..100u64).map(|v| v * k).sum::<u64>())
        });
        g.finish();
    }
}
