//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde's *derives* as forward-compatible
//! annotations — nothing actually serializes through serde yet (the
//! container format in `gobo-quant` is hand-rolled). This stand-in
//! keeps those annotations compiling without network access: the traits
//! are markers blanket-implemented for every type, and the derive
//! macros expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types (blanket-implemented).
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types (blanket-implemented).
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring serde's blanket rule.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: ?Sized> DeserializeOwned for T {}
