//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the API subset the workspace uses: `RngCore`,
//! `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! `rngs::{StdRng, SmallRng}`, and `seq::SliceRandom::{shuffle, choose}`.
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, deterministic stream, though the exact values differ
//! from upstream `rand`'s ChaCha-based `StdRng`.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value from the standard distribution of `T`
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            let bytes = (z ^ (z >> 31)).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Builds a generator from ambient entropy (time + ASLR).
    fn from_entropy() -> Self {
        use std::time::{SystemTime, UNIX_EPOCH};
        let t =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
        let addr = &t as *const _ as u64;
        Self::seed_from_u64(t ^ addr.rotate_left(32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = rng.gen_range(3u8..=9);
            assert!((3..=9).contains(&z));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| f64::from(rng.gen::<f32>())).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(6);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
