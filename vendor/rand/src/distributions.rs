//! Distributions: the `Standard` unit distribution and uniform ranges.

use crate::RngCore;

/// Maps raw generator bits to a value of `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: `[0, 1)` for floats, full range for
/// integers.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 explicit mantissa bits of randomness.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform range sampling.
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can be sampled uniformly.
    pub trait SampleRange<T> {
        /// Samples one value from the range; panics on an empty range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range_impl {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let v = (rng.next_u64() as u128) % span;
                    self.start.wrapping_add(v as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range of a 128-bit-spanning type.
                        return rng.next_u64() as $t;
                    }
                    let v = (rng.next_u64() as u128) % span;
                    lo.wrapping_add(v as $t)
                }
            }
        )*};
    }

    int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_impl {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    let v = self.start as f64 + (self.end as f64 - self.start as f64) * unit;
                    let v = v as $t;
                    // Guard against rounding up onto the excluded endpoint.
                    if v >= self.end { self.start } else { v }
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    ((lo as f64 + (hi as f64 - lo as f64) * unit) as $t).clamp(lo, hi)
                }
            }
        )*};
    }

    float_range_impl!(f32, f64);
}
