//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — the default generator of this vendored stand-in.
///
/// (Upstream `rand`'s `StdRng` is ChaCha12; the exact stream therefore
/// differs, but everything in this workspace only relies on seeded
/// determinism, not on a particular stream.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn next_raw(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 0x2545F4914F6CDD1D];
        }
        StdRng { s }
    }
}

/// Small fast generator; identical to [`StdRng`] in this stand-in.
pub type SmallRng = StdRng;
