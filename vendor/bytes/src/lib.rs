//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset this workspace uses: [`Bytes`] (cheaply
//! clonable immutable byte buffer), [`BytesMut`] (growable builder),
//! and the [`BufMut`] little-endian put helpers.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copies `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes { data: Arc::from(slice) }
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Little-endian append helpers.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_equality() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(1);
        b.put_u16_le(0x0203);
        b.put_u32_le(0x04050607);
        b.put_f32_le(1.5);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 11);
        assert_eq!(frozen[0], 1);
        assert_eq!(&frozen[1..3], &[0x03, 0x02]);
        let again = Bytes::copy_from_slice(&frozen);
        assert_eq!(frozen, again);
    }
}
